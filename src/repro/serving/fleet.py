"""The edge fleet: many deployed OpenEI instances behind one gateway.

The paper deploys one OpenEI per device; the ROADMAP's north star is
serving heavy traffic, which needs many.  :class:`EdgeFleet` keeps a
registry of deployed instances over heterogeneous
:class:`~repro.hardware.device.DeviceSpec`\\ s, routes each libei request
to the best one through a pluggable :class:`~repro.serving.router.RoutingPolicy`,
and shares one :class:`~repro.serving.cache.SelectionCache` across the
whole fleet so repeated model selections are answered from memory.

Because :class:`EdgeFleet` implements the
:class:`~repro.serving.api.LibEITarget` surface, the fleet is served by
the very same dispatcher/server path as a single instance —
:class:`FleetGateway` is just a :class:`~repro.serving.server.LibEIServer`
whose target routes.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.model_zoo import ModelZoo
from repro.core.openei import AlgorithmHandler, BatchAlgorithmHandler, OpenEI
from repro.exceptions import ConfigurationError, ResourceNotFoundError
from repro.serving.api import ParsedRequest
from repro.serving.batching import BatchingConfig
from repro.serving.cache import SelectionCache
from repro.serving.router import RoutingPolicy, make_router
from repro.serving.server import LibEIServer
from repro.serving.telemetry import ALEMTelemetry


@dataclass
class FleetInstance:
    """One deployed OpenEI instance plus its fleet bookkeeping."""

    instance_id: str
    openei: OpenEI
    requests_served: int = field(default=0)  # guarded-by: _stats_lock

    @property
    def device_name(self) -> str:
        """Name of the device this instance is deployed on."""
        return self.openei.device.name

    def load_score(self) -> float:
        """Routing load signal, delegated to the runtime's introspection."""
        return self.openei.runtime.load_score()

    def describe(self) -> Dict[str, object]:
        """Per-instance summary surfaced by the fleet's ``/ei_status``."""
        return {
            "instance_id": self.instance_id,
            "device": self.device_name,
            "requests_served": self.requests_served,
            "load": self.openei.runtime.load(),
        }


class EdgeFleet:
    """Registry + router over N deployed OpenEI instances.

    Implements :class:`~repro.serving.api.LibEITarget`: algorithm calls
    are routed by the policy, data calls go to an instance that actually
    owns the sensor, and ``describe()`` aggregates fleet-wide status.
    """

    def __init__(
        self,
        router: Union[RoutingPolicy, str, None] = None,
        selection_cache: Optional[SelectionCache] = None,
        telemetry: Optional[ALEMTelemetry] = None,
    ) -> None:
        if isinstance(router, str):
            router = make_router(router)
        self.router = router or make_router("round-robin")
        self.selection_cache = selection_cache
        # when attached, every routed algorithm call records its observed
        # ALEM per (scenario, algorithm, replica); the adaptive controller
        # registers itself here so /ei_status reports reselections
        self.telemetry = telemetry
        self.adaptive = None
        # a RolloutController registers itself here so /ei_status reports
        # per-replica serving versions and in-flight canaries
        self.rollout = None
        self._instances: List[FleetInstance] = []
        self._ids = itertools.count()
        self._stats_lock = threading.Lock()
        # lazily-built worker pool behind submit_algorithm(); daemon
        # threads, so an un-shut-down pool cannot hang interpreter exit
        self._dispatch_pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _dispatch_lock
        self._dispatch_lock = threading.Lock()

    # -- construction -----------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        device_names: Iterable[str],
        package_name: str = "openei-lite",
        zoo: Optional[ModelZoo] = None,
        policy: Union[RoutingPolicy, str] = "round-robin",
        selection_cache: Optional[SelectionCache] = None,
        cache_size: int = 1024,
        cache_ttl_s: Optional[float] = 60.0,
        telemetry: Optional[ALEMTelemetry] = None,
    ) -> "EdgeFleet":
        """Deploy one OpenEI per named catalog device behind one fleet.

        All instances share a single model zoo (so capability-aware
        routing compares like with like) and a single selection cache
        (keys include the device name, so sharing is safe).  Pass
        ``selection_cache=None`` with ``cache_size=0`` to disable caching.
        """
        device_names = list(device_names)
        if not device_names:
            raise ConfigurationError("a fleet needs at least one device to deploy onto")
        if selection_cache is None and cache_size > 0:
            selection_cache = SelectionCache(max_size=cache_size, ttl_s=cache_ttl_s)
        fleet = cls(router=policy, selection_cache=selection_cache, telemetry=telemetry)
        zoo = zoo if zoo is not None else ModelZoo()  # an empty ModelZoo is falsy
        for name in device_names:
            fleet.add_instance(
                OpenEI(
                    device_name=name,
                    package_name=package_name,
                    zoo=zoo,
                    selection_cache=selection_cache,
                )
            )
        return fleet

    def add_instance(self, openei: OpenEI, instance_id: Optional[str] = None) -> FleetInstance:
        """Register an already-deployed OpenEI instance with the fleet."""
        if instance_id is None:
            instance_id = f"edge-{next(self._ids)}@{openei.device.name}"
        if any(existing.instance_id == instance_id for existing in self._instances):
            raise ConfigurationError(f"duplicate fleet instance id {instance_id!r}")
        if self.selection_cache is not None and openei.selection_cache is None:
            openei.selection_cache = self.selection_cache
        instance = FleetInstance(instance_id=instance_id, openei=openei)
        self._instances.append(instance)
        return instance

    # -- registry ---------------------------------------------------------------
    @property
    def instances(self) -> List[FleetInstance]:
        """All registered instances, in registration order."""
        return list(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[FleetInstance]:
        return iter(self._instances)

    def instance(self, instance_id: str) -> FleetInstance:
        """Look up one instance by id.

        Raises
        ------
        ResourceNotFoundError
            If no instance has that id.
        """
        for instance in self._instances:
            if instance.instance_id == instance_id:
                return instance
        raise ResourceNotFoundError(
            f"no fleet instance {instance_id!r}; "
            f"known: {[i.instance_id for i in self._instances]}"
        )

    def register_algorithm(
        self,
        scenario: str,
        name: str,
        handler: AlgorithmHandler,
        batch_handler: Optional[BatchAlgorithmHandler] = None,
    ) -> None:
        """Expose a handler on every instance (any replica can then serve it)."""
        for instance in self._instances:
            instance.openei.register_algorithm(scenario, name, handler, batch_handler)

    # -- routing ----------------------------------------------------------------
    def route(self, request: Optional[ParsedRequest] = None) -> FleetInstance:
        """Pick the instance that should serve ``request`` under the policy."""
        return self.router.choose(self._instances, request)

    def _instance_with_sensor(self, sensor_id: str) -> FleetInstance:
        """The first instance whose data store owns the sensor."""
        for instance in self._instances:
            if sensor_id in instance.openei.data_store.sensor_ids:
                return instance
        raise ResourceNotFoundError(
            f"no fleet instance owns sensor {sensor_id!r}"
        )

    # -- LibEITarget surface -----------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Fleet-wide status for the gateway's ``/ei_status``."""
        return {
            "fleet_size": len(self._instances),
            "router": self.router.describe(),
            "requests_served": sum(i.requests_served for i in self._instances),
            "selection_cache": (
                self.selection_cache.describe() if self.selection_cache is not None else None
            ),
            "telemetry": self.telemetry.describe() if self.telemetry is not None else None,
            "adaptive": self.adaptive.describe() if self.adaptive is not None else None,
            "rollout": self.rollout.describe() if self.rollout is not None else None,
            "instances": [instance.describe() for instance in self._instances],
        }

    def call_algorithm(
        self, scenario: str, name: str, args: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Route an algorithm call to the policy's chosen instance."""
        request = ParsedRequest(
            resource_type="ei_algorithms", scenario=scenario, algorithm=name,
            args=dict(args or {}),
        )
        instance = self.route(request)
        self._count_request(instance)
        start = time.perf_counter()
        # copy before tagging: a handler may return a shared/cached dict
        result = dict(instance.openei.call_algorithm(scenario, name, args))
        if self.telemetry is not None:
            self.telemetry.record_result(
                scenario, name, instance.instance_id, result,
                wall_latency_s=time.perf_counter() - start,
            )
        result.setdefault("served_by", instance.instance_id)
        return result

    def call_algorithm_batch(
        self,
        scenario: str,
        name: str,
        args_list: Sequence[Optional[Dict[str, object]]],
    ) -> List[Dict[str, object]]:
        """Route one micro-batch of same-algorithm calls to a single instance.

        The whole batch lands on the policy's chosen replica so its
        batch handler can answer it with one vectorized invocation.
        """
        request = ParsedRequest(
            resource_type="ei_algorithms", scenario=scenario, algorithm=name,
            args=dict(args_list[0] or {}) if args_list else {},
        )
        instance = self.route(request)
        start = time.perf_counter()
        results = instance.openei.call_algorithm_batch(scenario, name, args_list)
        # count only after success: a failed batch is retried per request by
        # the batching dispatcher, and those retries count themselves
        self._count_request(instance, count=len(args_list))
        # amortized per-request wall clock: the batch ran as one invocation
        per_request_s = (time.perf_counter() - start) / max(1, len(results))
        tagged = []
        for result in results:
            if self.telemetry is not None:
                self.telemetry.record_result(
                    scenario, name, instance.instance_id, result,
                    wall_latency_s=per_request_s,
                )
            result = dict(result)
            result.setdefault("served_by", instance.instance_id)
            tagged.append(result)
        return tagged

    def submit_algorithm(
        self,
        scenario: str,
        name: str,
        args: Optional[Dict[str, object]] = None,
        max_workers: int = 16,
    ) -> "Future[Dict[str, object]]":
        """Non-blocking :meth:`call_algorithm`: route, dispatch, return a future.

        This is the open-loop firing primitive: an arrival-time-driven
        load generator (:class:`~repro.loadgen.harness.OpenLoopHarness`)
        must fire the next request on schedule even while earlier ones
        are still executing, so the dispatch cannot block the schedule
        thread.  Calls run on a shared fleet-owned worker pool
        (``max_workers`` sizes it on first use); queueing behind a full
        pool is visible to the caller as future latency — exactly the
        backpressure signal a tail-latency measurement needs.
        """
        with self._dispatch_lock:
            if self._dispatch_pool is None:
                self._dispatch_pool = ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="fleet-dispatch"
                )
            pool = self._dispatch_pool
        return pool.submit(self.call_algorithm, scenario, name, args)

    def shutdown_dispatch(self, wait: bool = True) -> None:
        """Tear down the :meth:`submit_algorithm` worker pool (idempotent)."""
        with self._dispatch_lock:
            pool, self._dispatch_pool = self._dispatch_pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def get_realtime_data(self, sensor_id: str) -> Dict[str, object]:
        """Serve a realtime data call from an instance owning the sensor."""
        instance = self._instance_with_sensor(sensor_id)
        self._count_request(instance)
        return instance.openei.get_realtime_data(sensor_id)

    def get_historical_data(
        self, sensor_id: str, start: float, end: Optional[float] = None
    ) -> Dict[str, object]:
        """Serve a historical data call from an instance owning the sensor."""
        instance = self._instance_with_sensor(sensor_id)
        self._count_request(instance)
        return instance.openei.get_historical_data(sensor_id, start, end)

    def _count_request(self, instance: FleetInstance, count: int = 1) -> None:
        """Bump a request counter under the fleet lock (handler threads race)."""
        with self._stats_lock:
            instance.requests_served += count

    # -- statistics --------------------------------------------------------------
    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Shared selection-cache statistics (``None`` when caching is off)."""
        if self.selection_cache is None:
            return None
        return self.selection_cache.describe()


class FleetGateway(LibEIServer):
    """HTTP front-end for an :class:`EdgeFleet`.

    The gateway speaks the exact libei grammar of Fig. 6 — clients cannot
    tell a fleet from a single instance, except that ``/ei_status`` now
    reports fleet-wide state and responses carry a ``served_by`` field.
    Run several gateways over one fleet for replica failover (see
    :class:`~repro.serving.client.LibEIClient`).  Passing
    ``batching=BatchingConfig(...)`` micro-batches concurrent
    same-algorithm requests before they are routed, so one replica
    answers the whole batch with a single vectorized invocation.
    """

    def __init__(
        self,
        fleet: EdgeFleet,
        host: str = "127.0.0.1",
        port: int = 0,
        batching: Optional[BatchingConfig] = None,
    ) -> None:
        super().__init__(fleet, host=host, port=port, batching=batching)
        self.fleet = fleet
