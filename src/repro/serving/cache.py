"""Selection caching for the fleet serving hot path.

Eq. (1) selection is cheap for one request but dominates the gateway's
hot path once thousands of identical requests arrive: every call
re-profiles every zoo model on the target device before ranking.  The
fleet layer therefore memoizes :class:`~repro.core.model_selector.SelectionResult`
objects behind a TTL + LRU cache keyed by everything that can change the
answer — the device, the zoo contents, the ALEM requirement and the
optimization target.  TTL bounds staleness (device load and profiles
drift over time); LRU bounds memory on small edges.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.alem import ALEMRequirement, OptimizationTarget
from repro.exceptions import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-serializable view (exposed through ``/ei_status`` on gateways)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: object
    expires_at: float = field(default=float("inf"))


class TTLLRUCache:
    """A bounded mapping with least-recently-used eviction and per-entry TTL.

    Thread-safe: one instance is shared across the gateway's handler
    threads (the fleet's selection cache and the capability router's
    score cache), so every mutation happens under a lock.

    ``clock`` is injectable so tests can advance time deterministically;
    it defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl_s: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size <= 0:
            raise ConfigurationError("cache max_size must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError("cache ttl_s must be positive (or None for no TTL)")
        self.max_size = int(max_size)
        self.ttl_s = float(ttl_s) if ttl_s is not None else None
        self.clock = clock
        self.stats = CacheStats()  # guarded-by: _lock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching LRU order or hit/miss statistics."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and self.clock() < entry.expires_at

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value, counting a hit/miss and refreshing LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            if self.clock() >= entry.expires_at:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh an entry, evicting the least recently used on overflow."""
        with self._lock:
            expires_at = self.clock() + self.ttl_s if self.ttl_s is not None else float("inf")
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(value=value, expires_at=expires_at)
            self.stats.stores += 1
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def remove_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* matches; returns how many were removed.

        This is the targeted-invalidation primitive the adaptive control
        plane uses when measured ALEM drifts away from a cached selection:
        only the affected keys are dropped, the rest of the cache keeps
        serving hits.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def describe(self) -> Dict[str, object]:
        """Status summary for ``/ei_status`` style reporting."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "ttl_s": self.ttl_s,
                **self.stats.as_dict(),
            }


#: A fully-normalized selection cache key.
SelectionKey = Tuple[str, Optional[str], Hashable, ALEMRequirement, OptimizationTarget]


class SelectionCache:
    """TTL + LRU memoization of model-selection results.

    The key covers the complete input of
    :meth:`repro.core.openei.OpenEI.select_model`:

    * the device name (profiles differ per device),
    * the task filter,
    * a fingerprint of the evaluation state — the zoo's model names plus
      the evaluator's known accuracies — so registering/removing a model
      or injecting an accuracy changes the key and stale winners cannot
      be returned,
    * the :class:`~repro.core.alem.ALEMRequirement` (frozen → hashable),
    * the :class:`~repro.core.alem.OptimizationTarget`.

    One instance is safely shared by a whole fleet because the device
    name participates in the key.
    """

    def __init__(
        self,
        max_size: int = 1024,
        ttl_s: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._cache = TTLLRUCache(max_size=max_size, ttl_s=ttl_s, clock=clock)

    @staticmethod
    def make_key(
        device_name: str,
        task: Optional[str],
        fingerprint: Hashable,
        requirement: ALEMRequirement,
        target: OptimizationTarget,
    ) -> SelectionKey:
        """Build the canonical cache key for one selection call."""
        return (device_name, task, fingerprint, requirement, target)

    def get(self, key: SelectionKey):
        """Cached :class:`SelectionResult` for the key, or ``None`` on miss.

        The result is returned as a shallow copy with fresh ``feasible``/
        ``infeasible`` lists: callers re-rank and truncate those lists, and
        handing out the stored object by reference would let one caller
        corrupt every future hit for the same key.
        """
        result = self._cache.get(key)
        if result is None:
            return None
        return replace(
            result, feasible=list(result.feasible), infeasible=list(result.infeasible)
        )

    def put(self, key: SelectionKey, result) -> None:
        """Memoize a selection result (defensively copied, see :meth:`get`)."""
        self._cache.put(
            key,
            replace(result, feasible=list(result.feasible), infeasible=list(result.infeasible)),
        )

    def clear(self) -> None:
        """Invalidate everything (e.g. after re-profiling a device)."""
        self._cache.clear()

    def invalidate(self, device_name: Optional[str] = None, task: Optional[str] = None) -> int:
        """Drop cached selections for one device and/or task; returns the count.

        ``None`` leaves that key field unconstrained, so
        ``invalidate(device_name="pi")`` drops every task's selections for
        that device.  Calling it with neither argument drops nothing —
        use :meth:`clear` for a full flush.
        """
        if device_name is None and task is None:
            return 0

        def affected(key: Hashable) -> bool:
            cached_device, cached_task = key[0], key[1]
            if device_name is not None and cached_device != device_name:
                return False
            if task is not None and cached_task != task:
                return False
            return True

        return self._cache.remove_where(affected)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Shared hit/miss statistics."""
        # lint: ignore[mutable-return] deliberate live view — callers read counters, snapshots go through as_dict()
        return self._cache.stats

    @property
    def hit_rate(self) -> float:
        """Convenience mirror of ``stats.hit_rate``."""
        return self._cache.stats.hit_rate

    def describe(self) -> Dict[str, object]:
        """Status summary (surfaced by fleet ``/ei_status``)."""
        return self._cache.describe()
