"""The adaptive SLO control plane: measure, detect, re-solve, redeploy.

Eq. (1) is solved once from analytically profiled ALEM points, but the
premise of serving live traffic is that device latency, energy and
accuracy *drift*.  :class:`AdaptiveController` closes the loop the paper
leaves open (and that DERopt-style rolling re-optimization demonstrates
for energy systems): it

1. **measures** — reads the windowed per-replica ALEM observations that
   :class:`~repro.serving.telemetry.ALEMTelemetry` collects from live
   gateway calls;
2. **detects** — evaluates :meth:`ALEMRequirement.violations` on the
   windowed means, gated by a minimum sample count and a cooldown;
3. **re-solves** — invalidates the affected
   :class:`~repro.serving.cache.SelectionCache` keys, rescales the
   candidate ALEM points by the measured latency/accuracy drift, and
   re-runs :meth:`~repro.core.model_selector.ModelSelector.select`
   (optionally warm-started by
   :class:`~repro.core.model_selector.RLModelSelector` online feedback);
4. **redeploys** — hot-swaps the replica's deployed model in place, or,
   when nothing on the edge is feasible any more, falls back to the
   paper's first dataflow through a
   :class:`~repro.collaboration.cloud_edge.CloudOffloadPlanner`.

Scenario handlers participate through :meth:`AdaptiveController.make_handler`,
which serves whatever model is currently deployed for the replica and
reports simulation-aware ``observed_alem`` measurements (nominal profile
latency scaled by the runtime's emulated
:attr:`~repro.runtime.edgeos.EdgeRuntime.slowdown`), so an injected
device slowdown propagates through telemetry into a reselection without
restarting the gateway.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collaboration.cloud_edge import CloudOffloadPlanner
from repro.core.alem import ALEM, ALEMRequirement, OptimizationTarget
from repro.core.capability import EvaluatedCandidate
from repro.core.model_selector import RLModelSelector
from repro.core.openei import OpenEI
from repro.core.wal import ControlPlaneJournal
from repro.exceptions import ConfigurationError, ModelSelectionError, ResourceNotFoundError
from repro.serving.telemetry import OBSERVED_ALEM_KEY, ALEMTelemetry, TelemetryWindow

#: Maps :meth:`ALEMRequirement.violations` names to telemetry axis names.
_VIOLATION_AXES = {
    "accuracy": "accuracy",
    "latency": "latency_s",
    "energy": "energy_j",
    "memory": "memory_mb",
}


@dataclass(frozen=True)
class SLOPolicy:
    """The service-level objective for one ``(scenario, algorithm)``.

    ``requirement`` is the constraint side of Eq. (1) applied to *measured*
    ALEM; ``task`` scopes which zoo models are candidates on reselection.
    ``min_samples`` observations of a violated axis must be in the window
    before the controller acts (one slow request must not trigger a fleet
    reconfiguration), and ``cooldown_s`` spaces consecutive reselection
    attempts on the same replica — including hold-position cycles where a
    violated cloud fallback is re-confirmed as the best option.
    """

    scenario: str
    algorithm: str
    task: Optional[str]
    requirement: ALEMRequirement
    target: OptimizationTarget = OptimizationTarget.ACCURACY
    min_samples: int = 5
    cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_samples <= 0:
            raise ConfigurationError("min_samples must be positive")
        if self.cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be non-negative")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scenario, self.algorithm)


@dataclass
class ModelDeployment:
    """What one replica currently serves for one ``(scenario, algorithm)``.

    ``expected`` is the *nominal* analytic ALEM of the deployed model on
    the replica's device (the baseline drift is measured against);
    ``predicted`` is the drift-adjusted ALEM the last selection believed
    it would deliver.  ``mode`` is ``"edge"`` or ``"cloud"``.
    """

    scenario: str
    algorithm: str
    instance_id: str
    model_name: str
    mode: str
    expected: ALEM
    predicted: ALEM
    reselections: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "instance_id": self.instance_id,
            "model": self.model_name,
            "mode": self.mode,
            "reselections": self.reselections,
            "expected": self.expected.as_dict(),
            "predicted": self.predicted.as_dict(),
        }


@dataclass(frozen=True)
class ReselectionEvent:
    """One control action taken after a detected SLO violation."""

    scenario: str
    algorithm: str
    instance_id: str
    violations: Dict[str, float]
    drift: float
    old_model: str
    new_model: Optional[str]
    outcome: str                 # "reselected" | "offloaded" | "exhausted"
    invalidated_keys: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "instance_id": self.instance_id,
            "violations": dict(self.violations),
            "drift": self.drift,
            "old_model": self.old_model,
            "new_model": self.new_model,
            "outcome": self.outcome,
            "invalidated_keys": self.invalidated_keys,
        }


@dataclass
class ControllerStats:
    """Counters surfaced through the gateway's ``/ei_status``."""

    checks: int = 0
    violations: int = 0
    reselections: int = 0
    offloads: int = 0
    exhausted: int = 0
    cache_invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "violations": self.violations,
            "reselections": self.reselections,
            "offloads": self.offloads,
            "exhausted": self.exhausted,
            "cache_invalidations": self.cache_invalidations,
        }


class AdaptiveController:
    """Fleet-wide online reselection driven by measured ALEM.

    The controller holds one :class:`ModelDeployment` per
    ``(scenario, algorithm, replica)`` under its registered policies.
    :meth:`check_all` (typically called periodically, or every N gateway
    requests) compares each deployment's telemetry window against its
    policy and reselects where the SLO is violated.
    """

    def __init__(
        self,
        fleet,
        telemetry: Optional[ALEMTelemetry] = None,
        offload: Optional[CloudOffloadPlanner] = None,
        rl_episodes: int = 0,
        rl_seed: int = 0,
        max_events: int = 128,
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[ControlPlaneJournal] = None,
    ) -> None:
        if rl_episodes < 0:
            raise ConfigurationError("rl_episodes must be non-negative")
        self.fleet = fleet
        self.journal = journal
        telemetry = telemetry if telemetry is not None else getattr(fleet, "telemetry", None)
        if telemetry is None:
            raise ConfigurationError(
                "AdaptiveController needs telemetry: pass one, or deploy the "
                "fleet with telemetry attached"
            )
        self.telemetry = telemetry
        self.offload = offload
        self.rl_episodes = int(rl_episodes)
        self.rl_seed = int(rl_seed)
        self.clock = clock
        self.stats = ControllerStats()  # guarded-by: _lock
        self.events: Deque[ReselectionEvent] = deque(maxlen=max_events)  # guarded-by: _lock
        self._lock = threading.RLock()
        self._policies: Dict[Tuple[str, str], SLOPolicy] = {}  # guarded-by: _lock
        self._deployments: Dict[Tuple[str, str, str], ModelDeployment] = {}  # guarded-by: _lock
        self._last_action: Dict[Tuple[str, str, str], float] = {}  # guarded-by: _lock
        # measured-over-analytic latency factor per deployment key.  It is
        # learned from *edge* observations and deliberately persists while
        # a deployment is offloaded: cloud traffic says nothing about the
        # edge device, so the last known edge drift keeps gating failback
        # (otherwise a violated cloud deployment would flap straight back
        # onto the still-slowed edge).
        self._calibration: Dict[Tuple[str, str, str], float] = {}  # guarded-by: _lock
        # let the fleet surface this controller through /ei_status
        if hasattr(fleet, "adaptive"):
            fleet.adaptive = self

    # -- policy registration -----------------------------------------------------
    def add_policy(self, policy: SLOPolicy) -> List[ModelDeployment]:
        """Register a policy and solve the initial selection on every replica."""
        with self._lock:
            if policy.key in self._policies:
                raise ConfigurationError(
                    f"a policy for {policy.scenario}/{policy.algorithm} is already registered"
                )
            self._policies[policy.key] = policy
            deployments = []
            for instance in self.fleet:
                deployment = self._initial_deployment(policy, instance)
                self._deployments[
                    (policy.scenario, policy.algorithm, instance.instance_id)
                ] = deployment
                deployments.append(deployment)
            return deployments

    def policy(self, scenario: str, algorithm: str) -> SLOPolicy:
        with self._lock:
            try:
                # lint: ignore[mutable-return] SLOPolicy is a frozen dataclass — sharing it cannot leak mutable state
                return self._policies[(scenario, algorithm)]
            except KeyError as exc:
                raise ResourceNotFoundError(
                    f"no SLO policy registered for {scenario}/{algorithm}"
                ) from exc

    def _initial_deployment(self, policy: SLOPolicy, instance) -> ModelDeployment:
        openei = instance.openei
        try:
            result = openei.select_model(
                task=policy.task, requirement=policy.requirement, target=policy.target
            )
            alem = result.selected.alem
            return ModelDeployment(
                scenario=policy.scenario,
                algorithm=policy.algorithm,
                instance_id=instance.instance_id,
                model_name=result.selected.model_name,
                mode="edge",
                expected=alem,
                predicted=alem,
            )
        except ModelSelectionError:
            if self.offload is None:
                raise
            plan = self._offload_plan(openei, policy)
            return ModelDeployment(
                scenario=policy.scenario,
                algorithm=policy.algorithm,
                instance_id=instance.instance_id,
                model_name=plan.model_name,
                mode="cloud",
                expected=plan.alem,
                predicted=plan.alem,
            )

    # -- deployment lookup -------------------------------------------------------
    def deployment(self, scenario: str, algorithm: str, instance_id: str) -> ModelDeployment:
        with self._lock:
            try:
                # a reselection installs a *new* ModelDeployment object, so
                # handing out the live one would let callers mutate state a
                # concurrent check() is reading — return a snapshot instead
                return replace(self._deployments[(scenario, algorithm, instance_id)])
            except KeyError as exc:
                raise ResourceNotFoundError(
                    f"no deployment for {scenario}/{algorithm} on {instance_id!r}"
                ) from exc

    def deployment_for(self, openei: OpenEI, scenario: str, algorithm: str) -> ModelDeployment:
        """The deployment serving one OpenEI instance (used inside handlers)."""
        for instance in self.fleet:
            if instance.openei is openei:
                return self.deployment(scenario, algorithm, instance.instance_id)
        raise ResourceNotFoundError(
            "the OpenEI instance handling this request is not part of the controller's fleet"
        )

    def deployments(self) -> List[ModelDeployment]:
        with self._lock:
            return list(self._deployments.values())

    def reset_calibration(
        self, scenario: Optional[str] = None, algorithm: Optional[str] = None
    ) -> None:
        """Forget learned latency drift (e.g. after a device was serviced).

        The next violation check re-measures from scratch, which is how an
        offloaded deployment gets a chance to fail back to the edge once
        the operator knows the slowdown has cleared.
        """
        with self._lock:
            for key in list(self._calibration):
                if scenario is not None and key[0] != scenario:
                    continue
                if algorithm is not None and key[1] != algorithm:
                    continue
                del self._calibration[key]

    def restore_calibration(
        self, entries: Sequence[Tuple[Tuple[str, str, str], float]]
    ) -> int:
        """Reinstate journaled drift factors after a restart.

        Only keys with no live calibration are restored — drift measured
        since the restart is always fresher than the journal.  Returns the
        number of keys restored.
        """
        restored = 0
        with self._lock:
            for key, drift in entries:
                if key in self._calibration:
                    continue
                self._calibration[tuple(key)] = float(drift)
                restored += 1
        return restored

    # -- the serving handler -----------------------------------------------------
    def make_handler(self, scenario: str, algorithm: str):
        """An :data:`~repro.core.openei.AlgorithmHandler` that serves the
        currently deployed model and reports ``observed_alem`` telemetry.

        The reported latency is the deployment's nominal profile latency
        scaled by the runtime's emulated slowdown (cloud deployments are
        immune to edge slowdown).  When the request carries a ``payload``
        the deployed model actually runs on it and the response includes
        the predicted label; cloud mode uses the zoo copy of the model as
        a stand-in for the cloud-hosted weights.
        """

        def handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
            deployment = self.deployment_for(ei, scenario, algorithm)
            if deployment.mode == "cloud":
                latency = deployment.expected.latency_s
            else:
                latency = deployment.expected.latency_s * ei.runtime.slowdown
            result: Dict[str, object] = {
                "model": deployment.model_name,
                "mode": deployment.mode,
                OBSERVED_ALEM_KEY: {
                    "latency_s": latency,
                    "accuracy": deployment.expected.accuracy,
                },
            }
            payload = args.get("payload")
            if payload is not None and deployment.model_name in ei.zoo:
                inputs = np.asarray(payload, dtype=np.float64)
                entry = ei.zoo.get(deployment.model_name)
                if inputs.shape == tuple(entry.input_shape):
                    inputs = inputs[None, ...]
                probabilities = entry.model.predict(inputs)
                result["label"] = int(np.argmax(probabilities[0]))
            return result

        return handler

    def register_handlers(self) -> None:
        """Register :meth:`make_handler` fleet-wide for every policy."""
        with self._lock:
            policies = list(self._policies.values())
        for policy in policies:
            self.fleet.register_algorithm(
                policy.scenario, policy.algorithm, self.make_handler(policy.scenario, policy.algorithm)
            )

    # -- the control loop --------------------------------------------------------
    def check_all(self) -> List[ReselectionEvent]:
        """Run one control cycle over every registered policy."""
        with self._lock:
            policies = list(self._policies.values())
        events: List[ReselectionEvent] = []
        for policy in policies:
            events.extend(self.check(policy.scenario, policy.algorithm))
        return events

    def check(self, scenario: str, algorithm: str) -> List[ReselectionEvent]:
        """Compare telemetry against one policy; reselect where violated."""
        policy = self.policy(scenario, algorithm)
        events: List[ReselectionEvent] = []
        learned: List[Tuple[Tuple[str, str, str], float]] = []
        with self._lock:
            self.stats.checks += 1
            for instance in self.fleet:
                key = (scenario, algorithm, instance.instance_id)
                deployment = self._deployments.get(key)
                if deployment is None:
                    continue
                window = self.telemetry.window(scenario, algorithm, instance.instance_id)
                if window is None:
                    continue
                violations = self._confirmed_violations(policy, window)
                if not violations:
                    continue
                last = self._last_action.get(key)
                if last is not None and self.clock() - last < policy.cooldown_s:
                    continue
                self.stats.violations += 1
                event = self._reselect(policy, instance, deployment, window, violations, learned)
                # stamp even when holding position, so cooldown_s also
                # spaces the (re-)evaluation work for a deployment that
                # cannot improve — not just successful swaps
                self._last_action[key] = self.clock()
                if event is None:
                    # already on the best known fallback; nothing to change
                    continue
                self.events.append(event)
                events.append(event)
        if self.journal is not None:
            # calibration is learned under the lock but journaled after it:
            # the fsync must not extend the critical section every handler
            # thread contends on
            for (s, a, replica), drift in learned:
                self.journal.append(
                    ControlPlaneJournal.CALIBRATION,
                    scenario=s,
                    algorithm=a,
                    replica=replica,
                    drift=drift,
                )
        return events

    def _confirmed_violations(
        self, policy: SLOPolicy, window: TelemetryWindow
    ) -> Dict[str, float]:
        """Violations whose axis has at least ``min_samples`` observations."""
        violations = window.violations(policy.requirement)
        return {
            name: magnitude
            for name, magnitude in violations.items()
            if window.count(_VIOLATION_AXES[name]) >= policy.min_samples
        }

    def _reselect(  # requires-lock: _lock (only called from check() inside the with block)
        self,
        policy: SLOPolicy,
        instance,
        deployment: ModelDeployment,
        window: TelemetryWindow,
        violations: Dict[str, float],
        learned: List[Tuple[Tuple[str, str, str], float]],
    ) -> Optional[ReselectionEvent]:
        openei = instance.openei
        observed = window.observed_alem()
        key = (policy.scenario, policy.algorithm, instance.instance_id)

        # calibrate the analytic profile against the measurements: the
        # latency drift of the *deployed* model applies to every candidate
        # on the same device (the slowdown is a device property, not a
        # model property); measured accuracy rescales the same way.  Cloud
        # deployments keep the last edge calibration — see _calibration.
        drift = self._calibration.get(key, 1.0)
        accuracy_scale = 1.0
        if deployment.mode == "edge":
            if window.count("latency_s") and deployment.expected.latency_s > 0:
                drift = max(observed.latency_s / deployment.expected.latency_s, 1e-9)
            if window.count("accuracy") and deployment.expected.accuracy > 0:
                accuracy_scale = observed.accuracy / deployment.expected.accuracy
        if self._calibration.get(key) != drift:
            learned.append((key, drift))
        self._calibration[key] = drift

        # stale analytic selections for this device/task are now wrong
        invalidated = 0
        if self.fleet.selection_cache is not None:
            invalidated = self.fleet.selection_cache.invalidate(
                device_name=openei.device.name, task=policy.task
            )
        self.stats.cache_invalidations += invalidated

        candidates = openei.evaluate_capability(task=policy.task)
        adjusted = [self._apply_drift(c, drift, accuracy_scale) for c in candidates]

        try:
            selected = self._solve(openei, adjusted, policy)
            nominal = next(
                c for c in candidates if c.model_name == selected.model_name
            )
            new_deployment = ModelDeployment(
                scenario=policy.scenario,
                algorithm=policy.algorithm,
                instance_id=instance.instance_id,
                model_name=selected.model_name,
                mode="edge",
                expected=nominal.alem,
                predicted=selected.alem,
                reselections=deployment.reselections + 1,
            )
            outcome = "reselected"
            self.stats.reselections += 1
        except ModelSelectionError:
            if self.offload is None:
                self.stats.exhausted += 1
                return ReselectionEvent(
                    scenario=policy.scenario,
                    algorithm=policy.algorithm,
                    instance_id=instance.instance_id,
                    violations=violations,
                    drift=drift,
                    old_model=deployment.model_name,
                    new_model=None,
                    outcome="exhausted",
                    invalidated_keys=invalidated,
                )
            plan = self._offload_plan(openei, policy)
            if deployment.mode == "cloud" and plan.model_name == deployment.model_name:
                # the SLO is still violated but the cloud is already the
                # best known fallback: hold position instead of flapping
                return None
            new_deployment = ModelDeployment(
                scenario=policy.scenario,
                algorithm=policy.algorithm,
                instance_id=instance.instance_id,
                model_name=plan.model_name,
                mode="cloud",
                expected=plan.alem,
                predicted=plan.alem,
                reselections=deployment.reselections + 1,
            )
            outcome = "offloaded"
            self.stats.offloads += 1

        # hot swap: subsequent handler calls serve the new deployment; the
        # fresh model is judged on its own window, not its predecessor's
        self._deployments[key] = new_deployment
        self.telemetry.reset(policy.scenario, policy.algorithm, instance.instance_id)
        return ReselectionEvent(
            scenario=policy.scenario,
            algorithm=policy.algorithm,
            instance_id=instance.instance_id,
            violations=violations,
            drift=drift,
            old_model=deployment.model_name,
            new_model=new_deployment.model_name,
            outcome=outcome,
            invalidated_keys=invalidated,
        )

    @staticmethod
    def _apply_drift(
        candidate: EvaluatedCandidate, drift: float, accuracy_scale: float
    ) -> EvaluatedCandidate:
        alem = candidate.alem
        return replace(
            candidate,
            alem=ALEM(
                accuracy=float(np.clip(alem.accuracy * accuracy_scale, 0.0, 1.0)),
                latency_s=alem.latency_s * drift,
                energy_j=alem.energy_j * drift,
                memory_mb=alem.memory_mb,
            ),
        )

    def _solve(
        self,
        openei: OpenEI,
        adjusted: Sequence[EvaluatedCandidate],
        policy: SLOPolicy,
    ) -> EvaluatedCandidate:
        """Exact Eq. (1) over drift-adjusted candidates, optionally RL-refined."""
        result = openei.model_selector.select(
            adjusted, requirement=policy.requirement, target=policy.target
        )
        if self.rl_episodes > 0 and len(result.feasible) > 1:
            # warm start from the feasible set only: the bandit gathers
            # noisy online feedback and may overturn near-ties, but can
            # never pick an infeasible arm
            learner = RLModelSelector(
                result.feasible,
                requirement=policy.requirement,
                target=policy.target,
                seed=self.rl_seed,
            )
            return learner.train(self.rl_episodes)
        return result.selected

    def _offload_plan(self, openei: OpenEI, policy: SLOPolicy):
        return self.offload.plan(
            openei.zoo,
            task=policy.task,
            requirement=policy.requirement,
            target=policy.target,
            accuracies=dict(openei.capability_evaluator.accuracy_fingerprint),
        )

    # -- reporting ---------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Controller status surfaced through the fleet's ``/ei_status``."""
        with self._lock:
            return {
                "policies": [
                    {
                        "scenario": p.scenario,
                        "algorithm": p.algorithm,
                        "task": p.task,
                        "target": p.target.value,
                        "min_samples": p.min_samples,
                        "cooldown_s": p.cooldown_s,
                    }
                    for p in self._policies.values()
                ],
                **self.stats.as_dict(),
                "deployments": [d.as_dict() for d in self._deployments.values()],
                "recent_events": [e.as_dict() for e in list(self.events)[-10:]],
            }
