"""Exception hierarchy shared across the OpenEI reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch framework failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ShapeError(ReproError):
    """A tensor or layer received data of an incompatible shape."""


class ModelSelectionError(ReproError):
    """The model selector could not find a model satisfying the constraints."""


class DeploymentError(ReproError):
    """OpenEI could not be deployed on the requested edge device."""


class SchedulingError(ReproError):
    """The edge runtime could not schedule or admit a task."""


class ResourceExhaustedError(SchedulingError):
    """A device ran out of memory, energy budget or compute capacity."""


class MigrationError(ReproError):
    """A computation-migration request could not be satisfied."""


class SerializationError(ReproError):
    """A model or dataset could not be serialized or deserialized."""


class APIError(ReproError):
    """A libei REST request was malformed or could not be dispatched."""


class ResourceNotFoundError(APIError):
    """A libei URL referenced an unknown algorithm, sensor or data range."""


class CollaborationError(ReproError):
    """A cloud-edge or edge-edge collaboration step failed."""


class BatchContractError(APIError):
    """A batch handler violated the batching contract (wrong result count)."""


class StaticAnalysisError(ReproError):
    """The repro.analysis linter could not parse or analyze a source file."""


class LockContractError(ReproError):
    """The runtime lock watcher detected a lock-order cycle or hold-budget
    violation (see :mod:`repro.analysis.lockwatch`)."""


class AnalysisError(ReproError):
    """A static model check failed: the shape/dtype interpreter in
    :mod:`repro.analysis.shapes` rejected an architecture at publish or
    deploy time.  The message names the offending layer index and what
    the abstract interpreter expected there."""


class StorageError(ReproError):
    """The durable layer (:mod:`repro.core.store` / :mod:`repro.core.wal`)
    could not read or write its on-disk state."""


class IntegrityError(StorageError):
    """On-disk content failed verification: a blob's bytes no longer hash
    to its content address, or a journaled artifact is missing from the
    store.  Recovery must stop — serving silently-corrupted model bytes
    is worse than refusing to start."""


class WALError(StorageError):
    """The write-ahead log could not append or replay (e.g. the log was
    closed, or a record is unencodable)."""


class WALCorruptionError(WALError):
    """The write-ahead log is damaged *before* its tail: a checksummed
    record in the middle of the file fails verification, so everything
    after it would be silently lost.  A torn tail (an append cut short
    by a crash) is NOT corruption — it is truncated automatically."""
