"""The OpenEI facade (Fig. 4): package manager + model selector + libei resources.

Deploying :class:`OpenEI` on a device spec turns that device into an
"intelligent edge": it owns an edge runtime, a package manager over a
model zoo, a capability evaluator and model selector, an edge data store,
and a registry of scenario algorithms reachable through libei's
``/ei_algorithms/<scenario>/<algorithm>`` URLs.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alem import ALEMRequirement, OptimizationTarget
from repro.core.capability import CapabilityEvaluator, EvaluatedCandidate
from repro.core.model_selector import ModelSelector, SelectionResult
from repro.core.model_zoo import ModelZoo
from repro.core.package_manager import InferenceOutcome, PackageManager
from repro.data.store import EdgeDataStore
from repro.exceptions import BatchContractError, DeploymentError, ResourceNotFoundError
from repro.hardware.catalog import get_device
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import make_profiler
from repro.runtime.edgeos import EdgeRuntime

#: Signature of a scenario algorithm: it receives the OpenEI instance and
#: the request arguments and returns a JSON-serializable dictionary.
AlgorithmHandler = Callable[["OpenEI", Dict[str, object]], Dict[str, object]]

#: Signature of a batch-capable scenario algorithm: one call over a list of
#: request argument dicts, returning one result per request *in order* —
#: typically a single vectorized ``predict`` over stacked inputs.
BatchAlgorithmHandler = Callable[
    ["OpenEI", List[Dict[str, object]]], List[Dict[str, object]]
]


class OpenEI:
    """One deployed OpenEI instance on one edge device."""

    #: The four application scenarios of Fig. 4.
    SCENARIOS = ("safety", "vehicles", "home", "health")

    def __init__(
        self,
        device: Optional[DeviceSpec] = None,
        device_name: Optional[str] = None,
        package_name: str = "openei-lite",
        zoo: Optional[ModelZoo] = None,
        data_store: Optional[EdgeDataStore] = None,
        selection_cache=None,
        telemetry=None,
    ) -> None:
        if device is None and device_name is None:
            raise DeploymentError("OpenEI needs a device or a device name to deploy onto")
        self.device = device or get_device(device_name)  # type: ignore[arg-type]
        self.runtime = EdgeRuntime(self.device)
        # "zoo or ModelZoo()" would discard an *empty* shared zoo (len() == 0
        # makes it falsy), silently unsharing fleet instances deployed before
        # any model is registered.
        self.zoo = zoo if zoo is not None else ModelZoo()
        self.package_manager = PackageManager(self.runtime, self.zoo, package_name=package_name)
        self.capability_evaluator = CapabilityEvaluator(self.zoo, self.package_manager.profiler)
        self.model_selector = ModelSelector()
        self.data_store = data_store or EdgeDataStore()
        # A repro.serving.cache.SelectionCache (duck-typed here so core does
        # not import serving); may be shared by every instance of a fleet.
        self.selection_cache = selection_cache
        # A repro.serving.telemetry.ALEMTelemetry (duck-typed for the same
        # reason).  When attached, every algorithm call records its observed
        # ALEM under this instance's device name; a fleet records at the
        # gateway instead, so instances deployed behind one leave this None.
        self.telemetry = telemetry
        self._algorithms: Dict[str, Dict[str, AlgorithmHandler]] = {
            scenario: {} for scenario in self.SCENARIOS
        }
        self._batch_algorithms: Dict[Tuple[str, str], BatchAlgorithmHandler] = {}

    # -- deployment -----------------------------------------------------------
    @classmethod
    def deploy(cls, device_name: str, package_name: str = "openei-lite") -> "OpenEI":
        """The paper's "deploy and play": stand up OpenEI on a named catalog device."""
        return cls(device_name=device_name, package_name=package_name)

    def describe(self) -> Dict[str, object]:
        """Status summary exposed through libei."""
        return {
            "device": self.device.name,
            "package_manager": self.package_manager.describe(),
            "runtime": self.runtime.describe(),
            "models": self.zoo.names,
            "scenarios": {
                scenario: sorted(handlers) for scenario, handlers in self._algorithms.items()
            },
            "sensors": self.data_store.sensor_ids,
            "selection_cache": (
                self.selection_cache.describe() if self.selection_cache is not None else None
            ),
            "telemetry": self.telemetry.describe() if self.telemetry is not None else None,
        }

    # -- model selection ---------------------------------------------------------
    def evaluate_capability(
        self,
        task: Optional[str] = None,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> List[EvaluatedCandidate]:
        """ALEM tuples for every zoo model (of a task) on this device."""
        return self.capability_evaluator.evaluate_all(
            self.device, task=task, x_test=x_test, y_test=y_test
        )

    def select_model(
        self,
        task: Optional[str] = None,
        requirement: Optional[ALEMRequirement] = None,
        target: OptimizationTarget = OptimizationTarget.LATENCY,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> SelectionResult:
        """Run the Selecting Algorithm for this device and the given requirement.

        When a selection cache is attached, repeated calls with the same
        (device, task, zoo contents, requirement, target) skip both the
        capability re-evaluation and the ranking.  Calls that carry fresh
        evaluation data bypass the cache, since the data may change the
        measured Accuracy.
        """
        requirement = requirement or ALEMRequirement()
        key = None
        if self.selection_cache is not None and x_test is None and y_test is None:
            # the fingerprint covers everything besides the device that
            # changes the measured ALEM points: the package configuration
            # (profiles differ per package, and two same-device instances
            # may share one fleet cache), the zoo contents, and the known
            # accuracies — so package swaps, register()/remove() and
            # set_accuracy() all invalidate stale selections immediately
            fingerprint = (
                self.capability_evaluator.profiler.package_name,
                tuple(self.zoo.names),
                self.capability_evaluator.accuracy_fingerprint,
            )
            key = self.selection_cache.make_key(
                self.device.name, task, fingerprint, requirement, target
            )
            cached = self.selection_cache.get(key)
            if cached is not None:
                return cached
        candidates = self.evaluate_capability(task=task, x_test=x_test, y_test=y_test)
        result = self.model_selector.select(candidates, requirement=requirement, target=target)
        if key is not None:
            self.selection_cache.put(key, result)
        return result

    # -- inference ------------------------------------------------------------------
    def infer(
        self,
        model_name: str,
        inputs: np.ndarray,
        realtime: bool = False,
        deadline_s: Optional[float] = None,
    ) -> InferenceOutcome:
        """Run inference through the package manager."""
        return self.package_manager.infer(
            model_name, inputs, realtime=realtime, deadline_s=deadline_s
        )

    def infer_with_selection(
        self,
        task: str,
        inputs: np.ndarray,
        requirement: Optional[ALEMRequirement] = None,
        target: OptimizationTarget = OptimizationTarget.ACCURACY,
        realtime: bool = False,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> Tuple[SelectionResult, InferenceOutcome]:
        """The Section III.E processing flow: select a model, then execute it.

        The default target is accuracy-oriented, matching "the default is
        accuracy oriented" in the paper's walk-through.
        """
        selection = self.select_model(
            task=task, requirement=requirement, target=target, x_test=x_test, y_test=y_test
        )
        outcome = self.infer(selection.selected.model_name, inputs, realtime=realtime)
        return selection, outcome

    # -- algorithm registry (libei's /ei_algorithms) -----------------------------------
    def register_algorithm(
        self,
        scenario: str,
        name: str,
        handler: AlgorithmHandler,
        batch_handler: Optional[BatchAlgorithmHandler] = None,
    ) -> None:
        """Expose ``handler`` as ``/ei_algorithms/<scenario>/<name>``.

        ``batch_handler`` optionally serves a whole list of concurrent
        requests in one call (see :meth:`call_algorithm_batch`); it must
        return exactly one result per request, in request order, and each
        result must match what ``handler`` returns for the same args.
        """
        if scenario not in self._algorithms:
            self._algorithms[scenario] = {}
        self._algorithms[scenario][name] = handler
        if batch_handler is not None:
            self._batch_algorithms[(scenario, name)] = batch_handler
        else:
            self._batch_algorithms.pop((scenario, name), None)

    def algorithms(self, scenario: Optional[str] = None) -> Dict[str, List[str]]:
        """Registered algorithm names, optionally for one scenario."""
        if scenario is not None:
            return {scenario: sorted(self._algorithms.get(scenario, {}))}
        return {s: sorted(handlers) for s, handlers in self._algorithms.items()}

    def call_algorithm(
        self, scenario: str, name: str, args: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Dispatch an /ei_algorithms call to its registered handler."""
        handlers = self._algorithms.get(scenario)
        if handlers is None or name not in handlers:
            raise ResourceNotFoundError(
                f"no algorithm {name!r} registered for scenario {scenario!r}"
            )
        if self.telemetry is None:
            return handlers[name](self, dict(args or {}))
        start = time.perf_counter()
        result = handlers[name](self, dict(args or {}))
        self.telemetry.record_result(
            scenario, name, self.device.name, result,
            wall_latency_s=time.perf_counter() - start,
        )
        return result

    def call_algorithm_batch(
        self,
        scenario: str,
        name: str,
        args_list: Sequence[Optional[Dict[str, object]]],
    ) -> List[Dict[str, object]]:
        """Serve many ``/ei_algorithms`` requests for one algorithm in one call.

        With a registered batch handler the whole list is answered by a
        single invocation (a vectorized ``predict`` over stacked inputs);
        otherwise the per-request handler runs in a loop, so batching is
        always correct and merely faster when the algorithm opts in.
        """
        handlers = self._algorithms.get(scenario)
        if handlers is None or name not in handlers:
            raise ResourceNotFoundError(
                f"no algorithm {name!r} registered for scenario {scenario!r}"
            )
        calls = [dict(args or {}) for args in args_list]
        batch_handler = self._batch_algorithms.get((scenario, name))
        if batch_handler is None:
            handler = handlers[name]
            return [handler(self, args) for args in calls]
        results = list(batch_handler(self, calls))
        if len(results) != len(calls):
            raise BatchContractError(
                f"batch handler for {scenario}/{name} returned {len(results)} "
                f"results for {len(calls)} requests"
            )
        return results

    # -- data access (libei's /ei_data) ---------------------------------------------------
    def get_realtime_data(self, sensor_id: str) -> Dict[str, object]:
        """Newest reading of a sensor, serialized for the REST layer."""
        reading = self.data_store.realtime(sensor_id)
        return {
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "shape": list(reading.payload.shape),
            "payload": reading.payload.tolist(),
            "annotations": reading.annotations,
        }

    def get_historical_data(
        self, sensor_id: str, start: float, end: Optional[float] = None
    ) -> Dict[str, object]:
        """Readings of a sensor within a time window, serialized for the REST layer."""
        readings = self.data_store.historical(sensor_id, start, end)
        return {
            "sensor_id": sensor_id,
            "count": len(readings),
            "start": start,
            "end": end,
            "timestamps": [r.timestamp for r in readings],
            "payloads": [r.payload.tolist() for r in readings],
        }
