"""Append-only, checksummed write-ahead event log for the control plane.

The fleet's control state — registry publishes, rollout transitions,
telemetry windows, drift calibration — used to live only in process
memory; a crash forgot every model version and every lesson the adaptive
controller had learned.  :class:`WriteAheadLog` is the event half of the
durable control plane (:class:`~repro.core.store.BlobStore` is the
artifact half): every state transition is journaled *before* it takes
effect, and a restarted process replays the log to converge back to the
pre-crash state (:mod:`repro.serving.recovery`).

Record format (all integers big-endian)::

    +----------------+----------------+------------------------+
    | length: uint32 | crc32:  uint32 | payload: length bytes  |
    +----------------+----------------+------------------------+

The payload is canonical JSON (sorted keys, compact separators, UTF-8),
so encoding is deterministic and records are inspectable with nothing
but ``struct`` and ``json``.

**Torn-tail tolerance.**  A writer killed mid-append (SIGKILL, power
loss) leaves a *torn tail*: a trailing record whose header or payload is
incomplete, or whose checksum fails because the bytes never finished
landing.  Opening the log truncates a torn tail back to the last intact
record — those events were never acknowledged as durable, so dropping
them is correct.  A checksum failure *before* the tail is different:
everything after it would be silently lost, so that raises
:class:`~repro.exceptions.WALCorruptionError` instead of guessing.

**Durability classes.**  Not every event earns an fsync on the thread
that produced it.  Control events (publishes, rollout transitions) are
*strict*: ``append`` fsyncs before returning, so an acknowledged event
survives power loss.  Observational events (telemetry snapshots, drift
calibration) ride request-handler threads, where a synchronous fsync
becomes tail latency for live traffic — they append *relaxed*
(``sync=False``): the bytes reach the OS page cache (surviving
``kill -9`` of the process) but are only fsynced by the next strict
append, an explicit :meth:`WriteAheadLog.flush`, or :meth:`close`.  An
OS crash can lose the most recent relaxed records; recovery tolerates
that — the windows refill from live traffic in a few requests.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import WALCorruptionError, WALError

_HEADER = struct.Struct(">II")

#: Bytes of framing in front of every payload (length + CRC32).
RECORD_HEADER_BYTES = _HEADER.size

#: Sanity ceiling on one record: a declared length beyond this is treated
#: as an unframeable (torn/garbage) header, never allocated.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(payload: Mapping[str, object]) -> bytes:
    """Frame one event as ``length + crc32 + canonical-JSON`` bytes."""
    try:
        data = json.dumps(dict(payload), sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WALError(f"WAL payloads must be JSON-encodable: {exc}") from exc
    if len(data) > MAX_RECORD_BYTES:
        raise WALError(
            f"WAL record of {len(data)} bytes exceeds the {MAX_RECORD_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(data), zlib.crc32(data)) + data


def decode_record(buf: bytes, offset: int = 0) -> Tuple[Dict[str, object], int]:
    """Decode the record at ``offset``; returns ``(payload, next_offset)``.

    Raises :class:`~repro.exceptions.WALCorruptionError` when the bytes
    at ``offset`` do not frame an intact record (callers that want torn
    tails *tolerated* use :func:`scan_records` instead).
    """
    if len(buf) - offset < RECORD_HEADER_BYTES:
        raise WALCorruptionError(f"no intact WAL record at byte {offset}: torn header")
    length, crc = _HEADER.unpack_from(buf, offset)
    end = offset + RECORD_HEADER_BYTES + length
    if length > MAX_RECORD_BYTES or end > len(buf):
        raise WALCorruptionError(f"no intact WAL record at byte {offset}: torn payload")
    data = buf[offset + RECORD_HEADER_BYTES:end]
    if zlib.crc32(data) != crc:
        raise WALCorruptionError(f"WAL record at byte {offset} fails its checksum")
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict):
        raise WALCorruptionError(f"WAL record at byte {offset} is not an object payload")
    return payload, end


def scan_records(buf: bytes) -> Tuple[List[Dict[str, object]], int, Optional[str]]:
    """Walk a byte buffer record by record.

    Returns ``(records, clean_end, error)``:

    * ``records`` — every intact record, in order;
    * ``clean_end`` — the byte offset just past the last intact record
      (everything after it is a torn tail to truncate);
    * ``error`` — ``None`` for a clean log or a torn tail; a message when
      a *complete* record mid-file fails its checksum (real corruption —
      bytes after it would be silently dropped by truncation).
    """
    records: List[Dict[str, object]] = []
    offset = 0
    total = len(buf)
    while offset < total:
        if total - offset < RECORD_HEADER_BYTES:
            return records, offset, None  # torn header
        length, crc = _HEADER.unpack_from(buf, offset)
        end = offset + RECORD_HEADER_BYTES + length
        if length > MAX_RECORD_BYTES or end > total:
            return records, offset, None  # garbage/torn length or torn payload
        data = buf[offset + RECORD_HEADER_BYTES:end]
        payload: Optional[Dict[str, object]] = None
        if zlib.crc32(data) == crc:
            try:
                decoded = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                decoded = None
            if isinstance(decoded, dict):
                payload = decoded
        if payload is None:
            if end == total:
                return records, offset, None  # corrupt *tail* record: torn write
            return records, offset, (
                f"corrupt WAL record at byte {offset} with "
                f"{total - end} intact-looking bytes after it"
            )
        records.append(payload)
        offset = end
    return records, offset, None


class WriteAheadLog:
    """A length-prefixed, checksummed, torn-tail-tolerant event log.

    Opening scans the whole file: intact records are counted, a torn
    tail (from a crashed append) is truncated away, and mid-file
    corruption raises :class:`~repro.exceptions.WALCorruptionError`.
    Appends are serialized under a lock and (by default) fsynced, so an
    acknowledged :meth:`append` survives ``kill -9``.

    ``append(..., sync=False)`` is the relaxed path for observational
    events produced on request-handler threads: the record is written
    and flushed to the OS (durable against process death) but not
    fsynced, so the handler never waits on the disk.  Pending relaxed
    bytes are made fully durable by the next ``sync=True`` append
    (fsync covers the whole file), an explicit :meth:`flush`, or
    :meth:`close`.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.read_bytes() if self.path.exists() else b""
        records, clean_end, error = scan_records(existing)
        if error is not None:
            raise WALCorruptionError(f"{self.path}: {error}")
        self.recovered_records = len(records)
        self.truncated_bytes = len(existing) - clean_end
        if self.truncated_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(clean_end)
                if self.fsync:
                    os.fsync(handle.fileno())
        self._lock = threading.Lock()
        self._file = open(self.path, "ab")  # guarded-by: _lock
        self._records = len(records)  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: relaxed bytes written since the last fsync
        self._pending_sync = False  # guarded-by: _lock

    # -- writing ------------------------------------------------------------------
    def append(self, payload: Mapping[str, object], sync: Optional[bool] = None) -> int:
        """Append one event; returns its byte offset in the log.

        ``sync=True`` (the default when the log was opened with
        ``fsync=True``) fsyncs before returning — and, because fsync
        covers the whole file, also hardens any pending relaxed records.
        ``sync=False`` skips the fsync: the record reaches the OS page
        cache (survives ``kill -9``) but not necessarily the platter.
        """
        blob = encode_record(payload)
        if sync is None:
            sync = self.fsync
        with self._lock:
            if self._closed:
                raise WALError(f"append to closed WAL {self.path}")
            offset = self._file.tell()
            self._file.write(blob)
            self._file.flush()
            if sync and self.fsync:
                os.fsync(self._file.fileno())
                self._pending_sync = False
            else:
                self._pending_sync = True
            self._records += 1
        return offset

    def flush(self) -> None:
        """Harden any pending relaxed appends (no-op when none are pending)."""
        with self._lock:
            if self._closed or not self._pending_sync:
                return
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._pending_sync = False

    # -- reading ------------------------------------------------------------------
    def replay(self) -> List[Dict[str, object]]:
        """Every intact record on disk, in append order.

        Safe to call on a live log (the write handle is flushed first);
        raises :class:`~repro.exceptions.WALCorruptionError` on mid-file
        damage, mirroring the open-time scan.
        """
        with self._lock:
            if not self._closed:
                self._file.flush()
        records, _, error = scan_records(self.path.read_bytes())
        if error is not None:
            raise WALCorruptionError(f"{self.path}: {error}")
        return records

    def __len__(self) -> int:
        """Records on disk (recovered at open plus appended since)."""
        with self._lock:
            # lint: ignore[mutable-return] _records is an int — immutable
            return self._records

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handle = self._file
            pending = self._pending_sync
            self._pending_sync = False
        handle.flush()
        if pending and self.fsync:
            # a clean shutdown loses no relaxed records
            os.fsync(handle.fileno())
        handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "path": str(self.path),
                "records": self._records,
                "recovered_records": self.recovered_records,
                "truncated_bytes": self.truncated_bytes,
                "fsync": self.fsync,
                "pending_sync": self._pending_sync,
            }


class ControlPlaneJournal:
    """Typed event vocabulary over one :class:`WriteAheadLog`.

    The registry, telemetry collector, adaptive controller and rollout
    controller all journal through this one object, so the WAL holds a
    single totally-ordered history of the control plane — which is what
    makes :func:`repro.serving.recovery.recover_control_plane` a simple
    left-to-right reduction.
    """

    #: A model version became pullable (blob already durable in the store).
    REGISTRY_PUBLISH = "registry-publish"
    #: Periodic snapshot of one (scenario, algorithm, replica) ALEM window.
    TELEMETRY_WINDOW = "telemetry-window"
    #: Telemetry windows were cleared (canary reset, promote, reselect).
    TELEMETRY_RESET = "telemetry-reset"
    #: The adaptive controller learned a latency-drift factor for a replica.
    CALIBRATION = "calibration"
    #: A registry version became the fleet-wide serving baseline.
    ROLLOUT_DEPLOY = "rollout-deploy"
    #: A canary claim was granted as a lease (written BEFORE staging).
    ROLLOUT_LEASE = "rollout-lease"
    #: An unresolved lease was released (staging failed, or expired at recovery).
    ROLLOUT_LEASE_RELEASED = "rollout-lease-released"
    #: The in-flight canary was promoted fleet-wide.
    ROLLOUT_PROMOTE = "rollout-promote"
    #: The in-flight canary was rolled back to the baseline.
    ROLLOUT_ROLLBACK = "rollout-rollback"

    EVENT_TYPES = (
        REGISTRY_PUBLISH,
        TELEMETRY_WINDOW,
        TELEMETRY_RESET,
        CALIBRATION,
        ROLLOUT_DEPLOY,
        ROLLOUT_LEASE,
        ROLLOUT_LEASE_RELEASED,
        ROLLOUT_PROMOTE,
        ROLLOUT_ROLLBACK,
    )

    #: Observational events appended without a synchronous fsync: they are
    #: produced on request-handler threads (telemetry snapshots ride every
    #: Nth gateway call, calibration rides the adaptive check), where an
    #: fsync is tail latency for live traffic.  Page-cache durability still
    #: covers ``kill -9``; an OS crash loses at most the newest snapshots,
    #: which live traffic regenerates within one window.  Control events —
    #: publishes, deploys, leases, promotes, rollbacks — stay strict: the
    #: correctness of recovery adjudication depends on them.
    RELAXED_EVENTS = frozenset((TELEMETRY_WINDOW, TELEMETRY_RESET, CALIBRATION))

    def __init__(
        self,
        wal: Union[WriteAheadLog, str, Path],
        fsync: bool = True,
        flush_interval_s: Optional[float] = None,
    ) -> None:
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal, fsync=fsync)
        self.wal = wal
        if flush_interval_s is not None and flush_interval_s <= 0:
            raise WALError("flush_interval_s must be positive when given")
        self.flush_interval_s = flush_interval_s
        self._stop_flusher = threading.Event()
        self._flusher: Optional[threading.Thread] = None
        if flush_interval_s is not None:
            # bounds how long a relaxed event can sit un-fsynced without
            # ever putting an fsync on a request-handler thread
            self._flusher = threading.Thread(
                target=self._flush_loop, name="wal-flusher", daemon=True
            )
            self._flusher.start()

    def _flush_loop(self) -> None:
        # flush() on a closed WAL is a silent no-op, so the loop cannot
        # race close(): it just stops doing work until the stop event fires
        while not self._stop_flusher.wait(self.flush_interval_s):
            self.wal.flush()

    def append(self, event_type: str, **fields: object) -> Dict[str, object]:
        """Journal one typed event; returns the full record as written.

        Events in :data:`RELAXED_EVENTS` append without a synchronous
        fsync (see :meth:`WriteAheadLog.append`); every other event is
        fsynced before this returns — which also hardens any relaxed
        records still pending, preserving total order durability.
        """
        if event_type not in self.EVENT_TYPES:
            raise WALError(
                f"unknown control-plane event type {event_type!r}; "
                f"expected one of {self.EVENT_TYPES}"
            )
        event: Dict[str, object] = {"type": event_type, "ts": time.time(), **fields}
        self.wal.append(event, sync=event_type not in self.RELAXED_EVENTS)
        return event

    def flush(self) -> None:
        """Harden any pending relaxed events (delegates to the WAL)."""
        self.wal.flush()

    def replay(self) -> List[Dict[str, object]]:
        """Every journaled event in order (torn tail already truncated)."""
        return self.wal.replay()

    def close(self) -> None:
        self._stop_flusher.set()
        if self._flusher is not None:
            self._flusher.join()
            self._flusher = None
        self.wal.close()

    def __enter__(self) -> "ControlPlaneJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> Dict[str, object]:
        return self.wal.describe()
