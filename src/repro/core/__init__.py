"""OpenEI core: the paper's primary contribution.

* :mod:`repro.core.alem` — the four-element EI capability tuple
  ⟨Accuracy, Latency, Energy, Memory footprint⟩ and constraint objects.
* :mod:`repro.core.capability` — evaluating the ALEM tuple of a
  (model, package, device) combination.
* :mod:`repro.core.model_zoo` — the optimized-model registry the model
  selector draws from.
* :mod:`repro.core.registry` — the versioned, content-addressed model
  registry behind the cloud→edge→cloud model lifecycle.
* :mod:`repro.core.store` — the on-disk content-addressed blob store
  (atomic writes, verification on read) backing a durable registry.
* :mod:`repro.core.wal` — the append-only, checksummed write-ahead
  event log the control plane journals through and recovers from.
* :mod:`repro.core.model_selector` — the Selecting Algorithm of Eq. (1)
  plus a reinforcement-learning selector.
* :mod:`repro.core.package_manager` — the lightweight package manager
  with inference, local training and the real-time ML module.
* :mod:`repro.core.openei` — the OpenEI facade deployed on an edge device
  (Fig. 4), wiring the three components together with libei.
"""

from repro.core.alem import ALEM, ALEMRequirement, OptimizationTarget
from repro.core.capability import CapabilityEvaluator, EvaluatedCandidate
from repro.core.model_selector import ModelSelector, RLModelSelector, SelectionResult
from repro.core.model_zoo import ModelZoo, ZooEntry
from repro.core.openei import OpenEI
from repro.core.package_manager import InferenceOutcome, PackageManager
from repro.core.registry import ModelRegistry, ModelVersion, RegistryStats
from repro.core.store import BlobStore, content_key
from repro.core.wal import ControlPlaneJournal, WriteAheadLog

__all__ = [
    "ALEM",
    "ALEMRequirement",
    "BlobStore",
    "CapabilityEvaluator",
    "ControlPlaneJournal",
    "WriteAheadLog",
    "content_key",
    "EvaluatedCandidate",
    "InferenceOutcome",
    "ModelRegistry",
    "ModelSelector",
    "ModelVersion",
    "ModelZoo",
    "OpenEI",
    "RegistryStats",
    "OptimizationTarget",
    "PackageManager",
    "RLModelSelector",
    "SelectionResult",
    "ZooEntry",
]
