"""The OpenEI package manager (Section III.B).

The package manager is the lightweight deep-learning runtime installed on
the edge OS.  It loads optimized models from the zoo, executes inference,
supports *local training* (personalization via transfer learning) and
contains the *real-time machine-learning module* which promotes urgent
tasks to the highest scheduling priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.collaboration.cloud_edge import TransferLearner
from repro.core.model_zoo import ModelZoo, ZooEntry
from repro.exceptions import ConfigurationError, DeploymentError
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import ALEMProfiler, make_profiler
from repro.nn.model import Sequential
from repro.runtime.edgeos import EdgeRuntime
from repro.runtime.tasks import Task


@dataclass
class InferenceOutcome:
    """Result of an inference executed through the package manager."""

    model_name: str
    predictions: np.ndarray
    latency_s: float
    energy_j: float
    memory_mb: float
    realtime: bool
    met_deadline: Optional[bool]


class PackageManager:
    """Loads models, runs inference/training and schedules them on the edge runtime."""

    def __init__(
        self,
        runtime: EdgeRuntime,
        zoo: Optional[ModelZoo] = None,
        package_name: str = "openei-lite",
        profiler: Optional[ALEMProfiler] = None,
    ) -> None:
        self.runtime = runtime
        # "zoo or ModelZoo()" would discard an *empty* shared zoo (len() == 0
        # makes it falsy), silently unsharing the caller's registry — the
        # same falsiness bug PR 1 fixed in OpenEI.
        self.zoo = zoo if zoo is not None else ModelZoo()
        self.profiler = profiler or make_profiler(package_name)
        self.package_name = self.profiler.package_name
        self._loaded: Dict[str, ZooEntry] = {}

    # -- model lifecycle ------------------------------------------------------
    def load_model(self, name: str) -> ZooEntry:
        """Load a zoo model onto this edge (consumes local storage)."""
        entry = self.zoo.get(name)
        size_mb = entry.model.size_bytes(entry.bytes_per_param) / (1024.0**2)
        if name not in self._loaded:
            self.runtime.install_model(name, size_mb)
            self._loaded[name] = entry
        return entry

    def install_from_registry(
        self, registry, name: str, version: Optional[int] = None
    ) -> ZooEntry:
        """Download a registry version into the zoo and load it onto this edge.

        The paper's package-manager download path, now against the
        versioned :class:`~repro.core.registry.ModelRegistry`: the full
        artifact (architecture + weights + state) replaces any same-name
        zoo entry, and the refreshed model is (re)loaded locally.  The
        registry lookup happens *before* the currently loaded copy is
        unloaded, so a failed install (unknown name/version) leaves the
        edge serving what it already had.
        """
        registry.get(name, version)  # raise before touching serving state
        if name in self._loaded:
            self.unload_model(name)
        self.zoo.pull_from(registry, name, version)
        return self.load_model(name)

    def unload_model(self, name: str) -> None:
        """Remove a loaded model from the edge."""
        if name in self._loaded:
            self.runtime.uninstall_model(name)
            del self._loaded[name]

    @property
    def loaded_models(self) -> Tuple[str, ...]:
        """Names of models currently resident on this edge."""
        return tuple(sorted(self._loaded))

    def _resolve(self, name: str) -> ZooEntry:
        if name in self._loaded:
            return self._loaded[name]
        return self.load_model(name)

    # -- inference --------------------------------------------------------------
    def infer(
        self,
        name: str,
        inputs: np.ndarray,
        realtime: bool = False,
        deadline_s: Optional[float] = None,
    ) -> InferenceOutcome:
        """Run inference with a loaded model, scheduled on the edge runtime.

        ``realtime=True`` invokes the real-time machine-learning module:
        the task is promoted to the highest priority so it runs ahead of
        any queued background work.
        """
        entry = self._resolve(name)
        if inputs.shape[1:] != entry.input_shape:
            raise ConfigurationError(
                f"model {name!r} expects input shape {entry.input_shape}, "
                f"got {tuple(inputs.shape[1:])}"
            )
        profile = self.profiler.profile(
            entry.model,
            entry.input_shape,
            self.runtime.device,
            batch_size=len(inputs),
            bytes_per_param=entry.bytes_per_param,
        )
        if not profile.fits_in_memory:
            raise DeploymentError(
                f"model {name!r} needs {profile.memory_mb:.1f} MB but device "
                f"{self.runtime.device.name} has {self.runtime.device.memory_mb:.1f} MB"
            )
        task = self.runtime.run_inference(
            name=f"infer/{name}",
            latency_s=profile.latency_s,
            memory_mb=profile.memory_mb,
            energy_j=profile.energy_j,
            deadline_s=deadline_s,
            realtime=realtime,
        )
        predictions = entry.model.predict(inputs)
        return InferenceOutcome(
            model_name=name,
            predictions=predictions,
            latency_s=profile.latency_s,
            energy_j=profile.energy_j,
            memory_mb=profile.memory_mb,
            realtime=realtime,
            met_deadline=task.met_deadline,
        )

    # -- local training ------------------------------------------------------------
    def train_locally(
        self,
        name: str,
        x_local: np.ndarray,
        y_local: np.ndarray,
        epochs: int = 5,
        learning_rate: float = 0.01,
    ) -> Tuple[Sequential, float]:
        """Personalize a loaded model on local data (dataflow 3 of Fig. 3).

        Returns the personalized model and the estimated training time on
        this device.
        """
        entry = self._resolve(name)
        learner = TransferLearner(epochs=epochs, learning_rate=learning_rate)
        estimated_seconds = self.profiler.profile_training(
            entry.model,
            entry.input_shape,
            self.runtime.device,
            samples=len(x_local),
            epochs=epochs,
        )
        task = Task(
            name=f"train/{name}",
            compute_seconds=estimated_seconds,
            memory_mb=self.profiler.profile(
                entry.model, entry.input_shape, self.runtime.device
            ).memory_mb,
            kind="training",
        )
        self.runtime.submit(task)
        self.runtime.run_pending()
        personalized = learner.retrain(entry.model, x_local, y_local)
        return personalized, estimated_seconds

    # -- introspection --------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary dictionary for libei's package-manager resource."""
        return {
            "package": self.package_name,
            "package_efficiency": self.profiler.package_efficiency,
            "loaded_models": list(self.loaded_models),
            "device": self.runtime.device.name,
        }
