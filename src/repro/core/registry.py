"""The versioned, content-addressed model registry.

The paper's model zoo holds whatever optimized models were registered in
process; nothing tracks *which build* of a model an edge is serving, and
pushing a new build across a fleet meant re-running the registration
code everywhere.  :class:`ModelRegistry` turns the cloud→edge→cloud
model loop into a real subsystem:

* **full-model artifacts** — every published version stores the complete
  :func:`~repro.nn.serialization.serialize_model` artifact (architecture
  + weights + layer state + compression metadata), so a puller needs no
  caller-side reconstruction;
* **content addressing** — artifacts are stored under their
  :func:`~repro.nn.serialization.model_fingerprint`; publishing the same
  content twice (even under two names) stores one blob, and pulling a
  version always yields byte-identical data on every replica;
* **versioning + lineage** — versions are monotonically numbered per
  name, and each may point at the version it was derived from
  (``base=``), which is how a compressed variant records the model it
  was compressed from;
* **delta-aware transfer costing** — per-array digests recorded at
  publish time let :meth:`delta_bytes` price an incremental download
  (only the arrays that changed) against what the edge already holds,
  which :class:`~repro.collaboration.cloud_edge.ModelSyncPlanner` turns
  into link seconds.

The registry is thread-safe: fleet replicas pull concurrently during a
rollout.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ResourceNotFoundError
from repro.nn.model import Sequential
from repro.nn.serialization import (
    array_digest,
    deserialize_model,
    model_arrays,
    model_fingerprint,
    serialize_model,
)

#: Ways to name a version: "name@3", ("name", 3), or a ModelVersion.
VersionRef = Union[str, Tuple[str, int], "ModelVersion"]


@dataclass(frozen=True)
class ModelVersion:
    """Immutable record of one published model version."""

    name: str
    version: int
    fingerprint: str
    size_bytes: int
    task: str
    input_shape: Tuple[int, ...]
    scenario: str = "generic"
    optimizations: Tuple[str, ...] = ()
    base: Optional[Tuple[str, int]] = None
    #: per-array content digests: key -> (sha256, nbytes); drives deltas.
    array_digests: Mapping[str, Tuple[str, int]] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """The ``name@version`` handle operators use."""
        return f"{self.name}@{self.version}"

    @property
    def array_bytes(self) -> int:
        """Total bytes of parameter/state arrays (the delta-able part)."""
        return sum(nbytes for _, nbytes in self.array_digests.values())

    @property
    def header_bytes(self) -> int:
        """Artifact bytes that transfer regardless of deltas (header + zip)."""
        return max(0, self.size_bytes - self.array_bytes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ref": self.ref,
            "fingerprint": self.fingerprint[:12],
            "size_bytes": self.size_bytes,
            "task": self.task,
            "input_shape": list(self.input_shape),
            "scenario": self.scenario,
            "optimizations": list(self.optimizations),
            "base": None if self.base is None else f"{self.base[0]}@{self.base[1]}",
            "extra": dict(self.extra),
        }


@dataclass
class RegistryStats:
    """Counters surfaced through :meth:`ModelRegistry.describe`."""

    publishes: int = 0
    dedup_hits: int = 0
    pulls: int = 0
    bytes_pulled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "publishes": self.publishes,
            "dedup_hits": self.dedup_hits,
            "pulls": self.pulls,
            "bytes_pulled": self.bytes_pulled,
        }


class ModelRegistry:
    """Thread-safe, versioned store of full-model artifacts."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._blobs: Dict[str, bytes] = {}  # guarded-by: _lock
        self._versions: Dict[str, List[ModelVersion]] = {}  # guarded-by: _lock
        self.stats = RegistryStats()  # guarded-by: _lock

    # -- publishing --------------------------------------------------------------
    def publish(
        self,
        name: str,
        model: Sequential,
        task: str,
        input_shape: Tuple[int, ...],
        scenario: str = "generic",
        optimizations: Tuple[str, ...] = (),
        base: Optional[VersionRef] = None,
        validate: bool = True,
        **extra: object,
    ) -> ModelVersion:
        """Publish a model as the next version of ``name``.

        Re-publishing the latest version's exact content *and* metadata
        is idempotent: the existing version is returned, no new version
        number is burned.  Same content with different metadata (e.g. a
        corrected eval accuracy) becomes a new version sharing the same
        stored blob.  ``base`` records lineage (e.g. the uncompressed
        model a quantized variant came from) and must already exist.

        ``validate=True`` (default) runs the static shape/dtype checker
        (:mod:`repro.analysis.shapes`) against ``input_shape`` before
        anything is stored, raising
        :class:`~repro.exceptions.AnalysisError` so a shape-broken
        architecture never becomes a pullable artifact.  Pass
        ``validate=False`` to archive intentionally exotic models.
        """
        if not name:
            raise ConfigurationError("registry entries need a non-empty name")
        if "@" in name:
            raise ConfigurationError(
                f"registry names cannot contain '@' (reserved for name@version "
                f"refs): {name!r}"
            )
        if validate:
            # imported lazily: the registry must stay importable even if
            # the analysis package is stripped from a deployment image
            from repro.analysis.shapes import validate_model

            validate_model(model, input_shape, context="publish")
        blob = serialize_model(model)
        digests = {
            key: (array_digest(value), int(value.nbytes))
            for key, value in model_arrays(model).items()
        }
        # reuse the per-array digests so publish hashes each array once
        fingerprint = model_fingerprint(
            model, array_digests={key: sha for key, (sha, _) in digests.items()}
        )
        with self._lock:
            base_key: Optional[Tuple[str, int]] = None
            if base is not None:
                resolved = self.resolve(base)
                base_key = (resolved.name, resolved.version)
            history = self._versions.setdefault(name, [])
            entry = ModelVersion(
                name=name,
                version=len(history) + 1,
                fingerprint=fingerprint,
                size_bytes=len(blob),
                task=task,
                input_shape=tuple(int(d) for d in input_shape),
                scenario=scenario,
                optimizations=tuple(optimizations),
                base=base_key,
                array_digests=digests,
                extra=dict(extra),
            )
            if history and self._same_release(history[-1], entry):
                self.stats.dedup_hits += 1
                return history[-1]
            if fingerprint in self._blobs:
                self.stats.dedup_hits += 1
            else:
                self._blobs[fingerprint] = blob
            history.append(entry)
            self.stats.publishes += 1
            return entry

    @staticmethod
    def _same_release(latest: ModelVersion, candidate: ModelVersion) -> bool:
        """Identical content *and* metadata — only then is publish a no-op."""
        return (
            latest.fingerprint == candidate.fingerprint
            and latest.task == candidate.task
            and latest.input_shape == candidate.input_shape
            and latest.scenario == candidate.scenario
            and latest.optimizations == candidate.optimizations
            and latest.base == candidate.base
            and dict(latest.extra) == dict(candidate.extra)
        )

    # -- lookup ------------------------------------------------------------------
    @staticmethod
    def _resolve_ref(ref: VersionRef) -> Tuple[str, Optional[int]]:
        if isinstance(ref, ModelVersion):
            return ref.name, ref.version
        if isinstance(ref, tuple):
            name, version = ref
            return str(name), int(version)
        ref = str(ref)
        if "@" in ref:
            name, _, version = ref.rpartition("@")
            if name and version.isdigit():
                return name, int(version)
        return ref, None

    def get(self, name: str, version: Optional[int] = None) -> ModelVersion:
        """One version's record (the latest when ``version`` is omitted)."""
        with self._lock:
            history = self._versions.get(name)
            if not history:
                raise ResourceNotFoundError(
                    f"model {name!r} is not in the registry; available: {self.names}"
                )
            if version is None:
                return history[-1]
            if not 1 <= version <= len(history):
                raise ResourceNotFoundError(
                    f"model {name!r} has versions 1..{len(history)}, not {version}"
                )
            return history[version - 1]

    def resolve(self, ref: VersionRef) -> ModelVersion:
        """Look up a version by any :data:`VersionRef` form."""
        return self.get(*self._resolve_ref(ref))

    @property
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def versions(self, name: str) -> List[ModelVersion]:
        """All versions of a name, oldest first."""
        with self._lock:
            self.get(name)  # raise uniformly on unknown names
            return list(self._versions[name])

    def lineage(self, ref: VersionRef) -> List[ModelVersion]:
        """The version plus its chain of ``base`` ancestors, newest first."""
        with self._lock:
            chain = [self.resolve(ref)]
            seen = {(chain[0].name, chain[0].version)}
            while chain[-1].base is not None:
                parent = self.get(*chain[-1].base)
                if (parent.name, parent.version) in seen:  # defensive: no cycles
                    break
                seen.add((parent.name, parent.version))
                chain.append(parent)
            return chain

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    # -- pulling -----------------------------------------------------------------
    def pull_bytes(self, name: str, version: Optional[int] = None) -> bytes:
        """The stored artifact bytes — identical for every concurrent puller."""
        with self._lock:
            entry = self.get(name, version)
            blob = self._blobs[entry.fingerprint]
            self.stats.pulls += 1
            self.stats.bytes_pulled += len(blob)
            return blob

    def pull(self, name: str, version: Optional[int] = None) -> Sequential:
        """Deserialize a private copy of one version (replicas never share)."""
        return deserialize_model(self.pull_bytes(name, version))

    # -- delta costing -----------------------------------------------------------
    def delta_bytes(
        self,
        name: str,
        version: Optional[int] = None,
        have: Optional[VersionRef] = None,
    ) -> int:
        """Bytes an edge must transfer to reach ``name@version``.

        ``have`` names what the edge already holds (any version of any
        registry name).  Arrays whose content digest is unchanged need
        not travel; the artifact header always does.  ``have=None`` (or
        an unrelated artifact) prices the full download; holding the
        target already prices zero.
        """
        with self._lock:
            target = self.get(name, version)
            if have is None:
                return target.size_bytes
            held = self.resolve(have)
            if held.fingerprint == target.fingerprint:
                return 0
            changed = sum(
                nbytes
                for key, (digest, nbytes) in target.array_digests.items()
                if held.array_digests.get(key, (None, 0))[0] != digest
            )
            return target.header_bytes + changed

    # -- reporting ---------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Registry summary for operator tooling and ``/ei_status``."""
        with self._lock:
            return {
                "models": {
                    name: [entry.as_dict() for entry in history]
                    for name, history in sorted(self._versions.items())
                },
                "blobs": len(self._blobs),
                "bytes_stored": sum(len(blob) for blob in self._blobs.values()),
                **self.stats.as_dict(),
            }
