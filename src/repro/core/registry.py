"""The versioned, content-addressed model registry.

The paper's model zoo holds whatever optimized models were registered in
process; nothing tracks *which build* of a model an edge is serving, and
pushing a new build across a fleet meant re-running the registration
code everywhere.  :class:`ModelRegistry` turns the cloud→edge→cloud
model loop into a real subsystem:

* **full-model artifacts** — every published version stores the complete
  :func:`~repro.nn.serialization.serialize_model` artifact (architecture
  + weights + layer state + compression metadata), so a puller needs no
  caller-side reconstruction;
* **content addressing** — artifacts are stored under their
  :func:`~repro.nn.serialization.model_fingerprint`; publishing the same
  content twice (even under two names) stores one blob, and pulling a
  version always yields byte-identical data on every replica;
* **versioning + lineage** — versions are monotonically numbered per
  name, and each may point at the version it was derived from
  (``base=``), which is how a compressed variant records the model it
  was compressed from;
* **delta-aware transfer costing** — per-array digests recorded at
  publish time let :meth:`delta_bytes` price an incremental download
  (only the arrays that changed) against what the edge already holds,
  which :class:`~repro.collaboration.cloud_edge.ModelSyncPlanner` turns
  into link seconds.

The registry is thread-safe: fleet replicas pull concurrently during a
rollout.

**Durability.**  By default everything lives in process memory (the
pre-PR-10 behavior, still right for tests and throwaway experiments).
Passing ``store=`` (a :class:`~repro.core.store.BlobStore`) persists
every artifact blob on disk with atomic writes and verification on
read, and ``journal=`` (a :class:`~repro.core.wal.ControlPlaneJournal`)
write-ahead-logs every publish, so :meth:`ModelRegistry.recover`
rebuilds the full version history — byte-identical blobs included —
after a crash or restart.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.store import BlobStore
from repro.core.wal import ControlPlaneJournal
from repro.exceptions import ConfigurationError, IntegrityError, ResourceNotFoundError
from repro.nn.model import Sequential
from repro.nn.serialization import (
    array_digest,
    deserialize_model,
    model_arrays,
    model_fingerprint,
    serialize_model,
)

#: Ways to name a version: "name@3", ("name", 3), or a ModelVersion.
VersionRef = Union[str, Tuple[str, int], "ModelVersion"]


@dataclass(frozen=True)
class ModelVersion:
    """Immutable record of one published model version."""

    name: str
    version: int
    fingerprint: str
    size_bytes: int
    task: str
    input_shape: Tuple[int, ...]
    scenario: str = "generic"
    optimizations: Tuple[str, ...] = ()
    base: Optional[Tuple[str, int]] = None
    #: per-array content digests: key -> (sha256, nbytes); drives deltas.
    array_digests: Mapping[str, Tuple[str, int]] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """The ``name@version`` handle operators use."""
        return f"{self.name}@{self.version}"

    @property
    def array_bytes(self) -> int:
        """Total bytes of parameter/state arrays (the delta-able part)."""
        return sum(nbytes for _, nbytes in self.array_digests.values())

    @property
    def header_bytes(self) -> int:
        """Artifact bytes that transfer regardless of deltas (header + zip)."""
        return max(0, self.size_bytes - self.array_bytes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ref": self.ref,
            "fingerprint": self.fingerprint[:12],
            "size_bytes": self.size_bytes,
            "task": self.task,
            "input_shape": list(self.input_shape),
            "scenario": self.scenario,
            "optimizations": list(self.optimizations),
            "base": None if self.base is None else f"{self.base[0]}@{self.base[1]}",
            "extra": dict(self.extra),
        }

    def to_record(self) -> Dict[str, object]:
        """Lossless JSON-able form, journaled on publish (cf. :meth:`as_dict`,
        which abbreviates for operator displays)."""
        return {
            "name": self.name,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "size_bytes": self.size_bytes,
            "task": self.task,
            "input_shape": list(self.input_shape),
            "scenario": self.scenario,
            "optimizations": list(self.optimizations),
            "base": None if self.base is None else [self.base[0], self.base[1]],
            "array_digests": {
                key: [sha, nbytes] for key, (sha, nbytes) in self.array_digests.items()
            },
            "extra": dict(self.extra),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "ModelVersion":
        """Rebuild a version from its journaled :meth:`to_record` form."""
        base = record.get("base")
        return cls(
            name=str(record["name"]),
            version=int(record["version"]),  # type: ignore[arg-type]
            fingerprint=str(record["fingerprint"]),
            size_bytes=int(record["size_bytes"]),  # type: ignore[arg-type]
            task=str(record["task"]),
            input_shape=tuple(int(d) for d in record["input_shape"]),  # type: ignore[union-attr]
            scenario=str(record.get("scenario", "generic")),
            optimizations=tuple(str(o) for o in record.get("optimizations", ())),  # type: ignore[union-attr]
            base=None if base is None else (str(base[0]), int(base[1])),  # type: ignore[index]
            array_digests={
                key: (str(sha), int(nbytes))
                for key, (sha, nbytes) in dict(record.get("array_digests", {})).items()
            },
            extra=dict(record.get("extra", {})),  # type: ignore[arg-type]
        )


@dataclass
class RegistryStats:
    """Counters surfaced through :meth:`ModelRegistry.describe`."""

    publishes: int = 0
    dedup_hits: int = 0
    pulls: int = 0
    bytes_pulled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "publishes": self.publishes,
            "dedup_hits": self.dedup_hits,
            "pulls": self.pulls,
            "bytes_pulled": self.bytes_pulled,
        }


class ModelRegistry:
    """Thread-safe, versioned store of full-model artifacts.

    ``store`` moves artifact bytes onto disk (content-addressed, atomic,
    verified on every read); ``journal`` write-ahead-logs publish events
    so :meth:`recover` can rebuild the version index after a restart.
    Without them the registry is purely in-memory, as before.
    """

    def __init__(
        self,
        store: Optional[BlobStore] = None,
        journal: Optional[ControlPlaneJournal] = None,
    ) -> None:
        if journal is not None and store is None:
            raise ConfigurationError(
                "a journaled registry needs a blob store too: publish events "
                "reference store content addresses, and recovery without the "
                "blobs would rebuild versions nobody can pull"
            )
        self.store = store
        self.journal = journal
        self._lock = threading.RLock()
        # memory mode: fingerprint -> artifact bytes
        self._blobs: Dict[str, bytes] = {}  # guarded-by: _lock
        # store mode: fingerprint -> content address in the blob store
        self._blob_keys: Dict[str, str] = {}  # guarded-by: _lock
        self._versions: Dict[str, List[ModelVersion]] = {}  # guarded-by: _lock
        self.stats = RegistryStats()  # guarded-by: _lock

    @classmethod
    def recover(
        cls, store: BlobStore, journal: ControlPlaneJournal
    ) -> "ModelRegistry":
        """Rebuild a registry from its blob store and write-ahead log.

        Replays every journaled publish in order, verifying that each
        version's blob actually exists in the store (the blob is written
        *before* the publish event, so an acknowledged publish can never
        reference a missing artifact — if one does, the store was
        damaged and recovery refuses to continue rather than serve a
        registry whose versions cannot be pulled).
        """
        registry = cls(store=store, journal=journal)
        events = journal.replay()
        # the registry is not yet shared, but the guarded-state contract
        # holds anyway: every _versions/_blob_keys/stats mutation happens
        # under the lock
        with registry._lock:
            for event in events:
                if event.get("type") != ControlPlaneJournal.REGISTRY_PUBLISH:
                    continue
                entry = ModelVersion.from_record(event)
                blob_key = str(event["blob_sha256"])
                if blob_key not in store:
                    raise IntegrityError(
                        f"journaled publish of {entry.ref} references blob "
                        f"{blob_key[:12]}… which is not in the store at {store.root}"
                    )
                history = registry._versions.setdefault(entry.name, [])
                if entry.version != len(history) + 1:
                    raise IntegrityError(
                        f"journal replays {entry.ref} but {entry.name} has "
                        f"{len(history)} recovered versions — the log is missing "
                        "a publish or was reordered"
                    )
                history.append(entry)
                registry._blob_keys[entry.fingerprint] = blob_key
                registry.stats.publishes += 1
        return registry

    # -- publishing --------------------------------------------------------------
    def publish(
        self,
        name: str,
        model: Sequential,
        task: str,
        input_shape: Tuple[int, ...],
        scenario: str = "generic",
        optimizations: Tuple[str, ...] = (),
        base: Optional[VersionRef] = None,
        validate: bool = True,
        **extra: object,
    ) -> ModelVersion:
        """Publish a model as the next version of ``name``.

        Re-publishing the latest version's exact content *and* metadata
        is idempotent: the existing version is returned, no new version
        number is burned.  Same content with different metadata (e.g. a
        corrected eval accuracy) becomes a new version sharing the same
        stored blob.  ``base`` records lineage (e.g. the uncompressed
        model a quantized variant came from) and must already exist.

        ``validate=True`` (default) runs the static shape/dtype checker
        (:mod:`repro.analysis.shapes`) against ``input_shape`` before
        anything is stored, raising
        :class:`~repro.exceptions.AnalysisError` so a shape-broken
        architecture never becomes a pullable artifact.  Pass
        ``validate=False`` to archive intentionally exotic models.
        """
        if not name:
            raise ConfigurationError("registry entries need a non-empty name")
        if "@" in name:
            raise ConfigurationError(
                f"registry names cannot contain '@' (reserved for name@version "
                f"refs): {name!r}"
            )
        if validate:
            # imported lazily: the registry must stay importable even if
            # the analysis package is stripped from a deployment image
            from repro.analysis.shapes import validate_model

            validate_model(model, input_shape, context="publish")
        blob = serialize_model(model)
        digests = {
            key: (array_digest(value), int(value.nbytes))
            for key, value in model_arrays(model).items()
        }
        # reuse the per-array digests so publish hashes each array once
        fingerprint = model_fingerprint(
            model, array_digests={key: sha for key, (sha, _) in digests.items()}
        )
        # write-ahead order: the blob becomes durable BEFORE the publish
        # event is journaled, so a crash between the two leaves at worst
        # an orphaned (content-addressed, idempotently rewritable) blob —
        # never a journaled version whose bytes are missing.  Done outside
        # the lock: concurrent same-content puts race benignly.
        blob_key: Optional[str] = None
        if self.store is not None:
            blob_key = self.store.put(blob)
        with self._lock:
            base_key: Optional[Tuple[str, int]] = None
            if base is not None:
                resolved = self.resolve(base)
                base_key = (resolved.name, resolved.version)
            history = self._versions.setdefault(name, [])
            entry = ModelVersion(
                name=name,
                version=len(history) + 1,
                fingerprint=fingerprint,
                size_bytes=len(blob),
                task=task,
                input_shape=tuple(int(d) for d in input_shape),
                scenario=scenario,
                optimizations=tuple(optimizations),
                base=base_key,
                array_digests=digests,
                extra=dict(extra),
            )
            if history and self._same_release(history[-1], entry):
                self.stats.dedup_hits += 1
                return history[-1]
            if fingerprint in self._blobs or fingerprint in self._blob_keys:
                self.stats.dedup_hits += 1
            if blob_key is not None:
                self._blob_keys[fingerprint] = blob_key
            elif fingerprint not in self._blobs:
                self._blobs[fingerprint] = blob
            if self.journal is not None:
                self.journal.append(
                    ControlPlaneJournal.REGISTRY_PUBLISH,
                    blob_sha256=blob_key,
                    **entry.to_record(),
                )
            history.append(entry)
            self.stats.publishes += 1
            return entry

    @staticmethod
    def _same_release(latest: ModelVersion, candidate: ModelVersion) -> bool:
        """Identical content *and* metadata — only then is publish a no-op."""
        return (
            latest.fingerprint == candidate.fingerprint
            and latest.task == candidate.task
            and latest.input_shape == candidate.input_shape
            and latest.scenario == candidate.scenario
            and latest.optimizations == candidate.optimizations
            and latest.base == candidate.base
            and dict(latest.extra) == dict(candidate.extra)
        )

    # -- lookup ------------------------------------------------------------------
    @staticmethod
    def _resolve_ref(ref: VersionRef) -> Tuple[str, Optional[int]]:
        if isinstance(ref, ModelVersion):
            return ref.name, ref.version
        if isinstance(ref, tuple):
            name, version = ref
            return str(name), int(version)
        ref = str(ref)
        if "@" in ref:
            name, _, version = ref.rpartition("@")
            if name and version.isdigit():
                return name, int(version)
        return ref, None

    def get(self, name: str, version: Optional[int] = None) -> ModelVersion:
        """One version's record (the latest when ``version`` is omitted)."""
        with self._lock:
            history = self._versions.get(name)
            if not history:
                raise ResourceNotFoundError(
                    f"model {name!r} is not in the registry; available: {self.names}"
                )
            if version is None:
                return history[-1]
            if not 1 <= version <= len(history):
                raise ResourceNotFoundError(
                    f"model {name!r} has versions 1..{len(history)}, not {version}"
                )
            return history[version - 1]

    def resolve(self, ref: VersionRef) -> ModelVersion:
        """Look up a version by any :data:`VersionRef` form."""
        return self.get(*self._resolve_ref(ref))

    @property
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def versions(self, name: str) -> List[ModelVersion]:
        """All versions of a name, oldest first."""
        with self._lock:
            self.get(name)  # raise uniformly on unknown names
            return list(self._versions[name])

    def lineage(self, ref: VersionRef) -> List[ModelVersion]:
        """The version plus its chain of ``base`` ancestors, newest first."""
        with self._lock:
            chain = [self.resolve(ref)]
            seen = {(chain[0].name, chain[0].version)}
            while chain[-1].base is not None:
                parent = self.get(*chain[-1].base)
                if (parent.name, parent.version) in seen:  # defensive: no cycles
                    break
                seen.add((parent.name, parent.version))
                chain.append(parent)
            return chain

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    # -- pulling -----------------------------------------------------------------
    def pull_bytes(self, name: str, version: Optional[int] = None) -> bytes:
        """The stored artifact bytes — identical for every concurrent puller.

        With a blob store attached the bytes come off disk and are
        re-verified against their content address on every pull, so a
        corrupted object can never reach a replica.
        """
        blob_key: Optional[str] = None
        with self._lock:
            entry = self.get(name, version)
            if self.store is not None:
                blob_key = self._blob_keys[entry.fingerprint]
            else:
                blob = self._blobs[entry.fingerprint]
        if blob_key is not None:
            # disk read + verification outside the lock: rollout replicas
            # pull concurrently and must not serialize on file I/O
            blob = self.store.get(blob_key)
        with self._lock:
            self.stats.pulls += 1
            self.stats.bytes_pulled += len(blob)
        return blob

    def pull(self, name: str, version: Optional[int] = None) -> Sequential:
        """Deserialize a private copy of one version (replicas never share)."""
        return deserialize_model(self.pull_bytes(name, version))

    # -- delta costing -----------------------------------------------------------
    def delta_bytes(
        self,
        name: str,
        version: Optional[int] = None,
        have: Optional[VersionRef] = None,
    ) -> int:
        """Bytes an edge must transfer to reach ``name@version``.

        ``have`` names what the edge already holds (any version of any
        registry name).  Arrays whose content digest is unchanged need
        not travel; the artifact header always does.  ``have=None`` (or
        an unrelated artifact) prices the full download; holding the
        target already prices zero.
        """
        with self._lock:
            target = self.get(name, version)
            if have is None:
                return target.size_bytes
            held = self.resolve(have)
            if held.fingerprint == target.fingerprint:
                return 0
            changed = sum(
                nbytes
                for key, (digest, nbytes) in target.array_digests.items()
                if held.array_digests.get(key, (None, 0))[0] != digest
            )
            return target.header_bytes + changed

    # -- reporting ---------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Registry summary for operator tooling and ``/ei_status``."""
        with self._lock:
            if self.store is not None:
                blobs = len(self._blob_keys)
                bytes_stored = self._stored_bytes()
            else:
                blobs = len(self._blobs)
                bytes_stored = sum(len(blob) for blob in self._blobs.values())
            return {
                "models": {
                    name: [entry.as_dict() for entry in history]
                    for name, history in sorted(self._versions.items())
                },
                "blobs": blobs,
                "bytes_stored": bytes_stored,
                "durable": self.store is not None,
                **self.stats.as_dict(),
            }

    def _stored_bytes(self) -> int:  # requires-lock: _lock
        """Unique stored bytes (store mode): one count per distinct blob."""
        seen: Dict[str, int] = {}
        for history in self._versions.values():
            for entry in history:
                seen[entry.fingerprint] = entry.size_bytes
        return sum(seen.values())
