"""The ALEM tuple: ⟨Accuracy, Latency, Energy, Memory footprint⟩.

The paper defines every EI capability as this four-element tuple:
Accuracy is task-specific (classification accuracy, mAP, BLEU), Latency
is per-inference wall-clock time, Energy is the extra joules drawn during
inference, and Memory footprint is resident megabytes while the model runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ConfigurationError


class OptimizationTarget(enum.Enum):
    """Which ALEM attribute Eq. (1) optimizes (the other three become constraints)."""

    LATENCY = "latency"
    ACCURACY = "accuracy"
    ENERGY = "energy"
    MEMORY = "memory"


@dataclass(frozen=True)
class ALEM:
    """One measured EI capability point.

    Attributes
    ----------
    accuracy:
        Task metric in ``[0, 1]`` (higher is better).
    latency_s:
        Seconds per inference (lower is better).
    energy_j:
        Extra joules per inference (lower is better).
    memory_mb:
        Resident megabytes during inference (lower is better).
    """

    accuracy: float
    latency_s: float
    energy_j: float
    memory_mb: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ConfigurationError("accuracy must lie in [0, 1]")
        if self.latency_s < 0 or self.energy_j < 0 or self.memory_mb < 0:
            raise ConfigurationError("latency, energy and memory must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary view (used by libei and reports)."""
        return {
            "accuracy": self.accuracy,
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "memory_mb": self.memory_mb,
        }

    def dominates(self, other: "ALEM") -> bool:
        """Pareto dominance: at least as good on every axis and better on one."""
        at_least = (
            self.accuracy >= other.accuracy
            and self.latency_s <= other.latency_s
            and self.energy_j <= other.energy_j
            and self.memory_mb <= other.memory_mb
        )
        strictly = (
            self.accuracy > other.accuracy
            or self.latency_s < other.latency_s
            or self.energy_j < other.energy_j
            or self.memory_mb < other.memory_mb
        )
        return at_least and strictly

    def objective_value(self, target: OptimizationTarget) -> float:
        """Scalar to *minimize* for the given optimization target."""
        if target is OptimizationTarget.LATENCY:
            return self.latency_s
        if target is OptimizationTarget.ENERGY:
            return self.energy_j
        if target is OptimizationTarget.MEMORY:
            return self.memory_mb
        return -self.accuracy

    def improvement_over(self, other: "ALEM") -> Dict[str, float]:
        """Multiplicative improvement factors versus another measurement.

        Used by the "order of magnitude improvement" benchmark (S1):
        values above 1 mean this tuple is better on that axis.
        """
        def ratio(better_low: float, worse_low: float) -> float:
            return worse_low / better_low if better_low > 0 else float("inf")

        return {
            "accuracy": self.accuracy / other.accuracy if other.accuracy > 0 else float("inf"),
            "latency": ratio(self.latency_s, other.latency_s),
            "energy": ratio(self.energy_j, other.energy_j),
            "memory": ratio(self.memory_mb, other.memory_mb),
        }


@dataclass(frozen=True)
class ALEMRequirement:
    """The constraint side of Eq. (1).

    ``min_accuracy`` is the application's A_req; ``max_energy_j`` and
    ``max_memory_mb`` are the E_pro / M_pro the edge provides;
    ``max_latency_s`` becomes a constraint when the optimization target
    is not latency.  ``None`` means unconstrained.
    """

    min_accuracy: Optional[float] = None
    max_latency_s: Optional[float] = None
    max_energy_j: Optional[float] = None
    max_memory_mb: Optional[float] = None

    def satisfied_by(self, measurement: ALEM) -> bool:
        """Whether a measured ALEM point meets every stated constraint."""
        if self.min_accuracy is not None and measurement.accuracy < self.min_accuracy:
            return False
        if self.max_latency_s is not None and measurement.latency_s > self.max_latency_s:
            return False
        if self.max_energy_j is not None and measurement.energy_j > self.max_energy_j:
            return False
        if self.max_memory_mb is not None and measurement.memory_mb > self.max_memory_mb:
            return False
        return True

    def violations(self, measurement: ALEM) -> Dict[str, float]:
        """Map of constraint name -> magnitude of violation (empty when satisfied)."""
        violations: Dict[str, float] = {}
        if self.min_accuracy is not None and measurement.accuracy < self.min_accuracy:
            violations["accuracy"] = self.min_accuracy - measurement.accuracy
        if self.max_latency_s is not None and measurement.latency_s > self.max_latency_s:
            violations["latency"] = measurement.latency_s - self.max_latency_s
        if self.max_energy_j is not None and measurement.energy_j > self.max_energy_j:
            violations["energy"] = measurement.energy_j - self.max_energy_j
        if self.max_memory_mb is not None and measurement.memory_mb > self.max_memory_mb:
            violations["memory"] = measurement.memory_mb - self.max_memory_mb
        return violations
