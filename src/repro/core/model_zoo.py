"""The optimized-model zoo behind OpenEI's model selector.

Fig. 4 shows the model selector holding a set of *optimized models*; this
registry stores them together with the metadata the Selecting Algorithm
needs — the task they solve, the input shape, the evaluation data to
measure Accuracy on, and how they were optimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential


@dataclass
class ZooEntry:
    """One optimized model registered in the zoo."""

    name: str
    model: Sequential
    task: str
    input_shape: Tuple[int, ...]
    scenario: str = "generic"
    optimizations: Tuple[str, ...] = ()
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def bytes_per_param(self) -> float:
        """Effective storage per parameter after compression metadata is applied."""
        return float(self.model.metadata.get("bytes_per_param", 4.0))


class ModelZoo:
    """Registry of optimized models, keyed by name and filterable by task/scenario."""

    def __init__(self) -> None:
        self._entries: Dict[str, ZooEntry] = {}

    def register(
        self,
        name: str,
        model: Sequential,
        task: str,
        input_shape: Tuple[int, ...],
        scenario: str = "generic",
        optimizations: Iterable[str] = (),
        **extra: object,
    ) -> ZooEntry:
        """Add a model to the zoo (replacing any existing entry of the same name)."""
        if not name:
            raise ConfigurationError("zoo entries need a non-empty name")
        entry = ZooEntry(
            name=name,
            model=model,
            task=task,
            input_shape=tuple(input_shape),
            scenario=scenario,
            optimizations=tuple(optimizations),
            extra=dict(extra),
        )
        self._entries[name] = entry
        return entry

    def pull_from(
        self,
        registry,
        name: str,
        version: Optional[int] = None,
        entry_name: Optional[str] = None,
    ) -> ZooEntry:
        """Install one registry version into the zoo (replacing same-name entries).

        ``registry`` is a :class:`~repro.core.registry.ModelRegistry`;
        the artifact carries everything the zoo needs (model, task,
        input shape, scenario, optimizations), so this is the package
        manager's download path from the cloud-side registry.  The zoo
        entry records its provenance under ``extra["registry_version"]``
        / ``extra["fingerprint"]``.
        """
        record = registry.get(name, version)
        model = registry.pull(name, record.version)
        return self.register(
            entry_name or name,
            model,
            task=record.task,
            input_shape=record.input_shape,
            scenario=record.scenario,
            optimizations=record.optimizations,
            registry_version=record.ref,
            fingerprint=record.fingerprint,
            **dict(record.extra),
        )

    def register_builder(
        self,
        name: str,
        builder: Callable[[], Sequential],
        task: str,
        input_shape: Tuple[int, ...],
        scenario: str = "generic",
        train: Optional[Callable[[Sequential], Sequential]] = None,
        **extra: object,
    ) -> ZooEntry:
        """Build (and optionally train) a model, then register it."""
        model = builder()
        if train is not None:
            model = train(model)
        return self.register(name, model, task, input_shape, scenario=scenario, **extra)

    def get(self, name: str) -> ZooEntry:
        """Look up an entry by name."""
        try:
            return self._entries[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"model {name!r} is not in the zoo; available: {sorted(self._entries)}"
            ) from exc

    def remove(self, name: str) -> None:
        """Delete an entry (no-op if absent)."""
        self._entries.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def names(self) -> List[str]:
        """All registered model names."""
        return sorted(self._entries)

    def entries(
        self, task: Optional[str] = None, scenario: Optional[str] = None
    ) -> List[ZooEntry]:
        """Entries filtered by task and/or scenario."""
        results = []
        for entry in self._entries.values():
            if task is not None and entry.task != task:
                continue
            if scenario is not None and entry.scenario != scenario:
                continue
            results.append(entry)
        return sorted(results, key=lambda e: e.name)

    def evaluate_accuracy(
        self, name: str, x_test: np.ndarray, y_test: np.ndarray
    ) -> float:
        """Convenience: accuracy of a zoo model on held-out data."""
        entry = self.get(name)
        return entry.model.evaluate(x_test, y_test)[1]
