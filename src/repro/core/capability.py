"""EI capability evaluation: attaching Accuracy to hardware profiles.

The Selecting Algorithm "will first evaluate the EI capability of the
hardware platform based on the four-element tuple ALEM".  The evaluator
combines the hardware profiler's Latency/Energy/Memory estimates with a
measured task Accuracy for each candidate model, yielding the
:class:`EvaluatedCandidate` points the selector optimizes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alem import ALEM
from repro.core.model_zoo import ModelZoo, ZooEntry
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import ALEMProfiler, ProfileResult


@dataclass(frozen=True)
class EvaluatedCandidate:
    """One (model, package, device) point with its full ALEM measurement."""

    model_name: str
    device_name: str
    package_name: str
    alem: ALEM
    fits_in_memory: bool
    profile: ProfileResult

    def as_dict(self) -> Dict[str, object]:
        result = {
            "model": self.model_name,
            "device": self.device_name,
            "package": self.package_name,
            "fits_in_memory": self.fits_in_memory,
        }
        result.update(self.alem.as_dict())
        return result


class CapabilityEvaluator:
    """Measures ALEM tuples for zoo models on a device under a package config.

    Accuracy measurements are cached per model (accuracy is device
    independent); Latency/Energy/Memory come from the profiler.
    """

    def __init__(self, zoo: ModelZoo, profiler: Optional[ALEMProfiler] = None) -> None:
        self.zoo = zoo
        self.profiler = profiler or ALEMProfiler()
        self._accuracy_cache: Dict[str, float] = {}

    def measure_accuracy(self, entry: ZooEntry, x_test: np.ndarray, y_test: np.ndarray) -> float:
        """Accuracy of one zoo model, cached by model name."""
        if entry.name not in self._accuracy_cache:
            self._accuracy_cache[entry.name] = entry.model.evaluate(x_test, y_test)[1]
        return self._accuracy_cache[entry.name]

    def set_accuracy(self, model_name: str, accuracy: float) -> None:
        """Inject a known accuracy (used when evaluation data is unavailable)."""
        self._accuracy_cache[model_name] = float(accuracy)

    @property
    def accuracy_fingerprint(self) -> Tuple[Tuple[str, float], ...]:
        """Hashable snapshot of the known accuracies.

        Participates in selection-cache keys so injecting or re-measuring
        an accuracy invalidates previously cached selections immediately.
        """
        return tuple(sorted(self._accuracy_cache.items()))

    def evaluate(
        self,
        entry: ZooEntry,
        device: DeviceSpec,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        batch_size: int = 1,
    ) -> EvaluatedCandidate:
        """Produce the full ALEM point for one zoo entry on one device."""
        if x_test is not None and y_test is not None:
            accuracy = self.measure_accuracy(entry, x_test, y_test)
        else:
            accuracy = self._accuracy_cache.get(entry.name, 0.0)
        profile = self.profiler.profile(
            entry.model,
            entry.input_shape,
            device,
            batch_size=batch_size,
            bytes_per_param=entry.bytes_per_param,
        )
        alem = ALEM(
            accuracy=accuracy,
            latency_s=profile.latency_s,
            energy_j=profile.energy_j,
            memory_mb=profile.memory_mb,
        )
        return EvaluatedCandidate(
            model_name=entry.name,
            device_name=device.name,
            package_name=self.profiler.package_name,
            alem=alem,
            fits_in_memory=profile.fits_in_memory,
            profile=profile,
        )

    def evaluate_all(
        self,
        device: DeviceSpec,
        task: Optional[str] = None,
        scenario: Optional[str] = None,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> List[EvaluatedCandidate]:
        """Evaluate every matching zoo entry on one device."""
        return [
            self.evaluate(entry, device, x_test=x_test, y_test=y_test)
            for entry in self.zoo.entries(task=task, scenario=scenario)
        ]

    def evaluate_grid(
        self,
        devices: Sequence[DeviceSpec],
        profilers: Sequence[ALEMProfiler],
        task: Optional[str] = None,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> List[EvaluatedCandidate]:
        """The Fig. 5 grid: models x packages x devices, fully evaluated."""
        results: List[EvaluatedCandidate] = []
        original_profiler = self.profiler
        try:
            for profiler in profilers:
                self.profiler = profiler
                for device in devices:
                    results.extend(
                        self.evaluate_all(device, task=task, x_test=x_test, y_test=y_test)
                    )
        finally:
            self.profiler = original_profiler
        return results
