"""The model selector: Eq. (1) and a reinforcement-learning variant.

Equation (1) of the paper:

    argmin_m  L   subject to  A >= A_req,  E <= E_pro,  M <= M_pro

with symmetric variants when the user cares about Accuracy, Energy or
Memory instead.  :class:`ModelSelector` solves the constrained problem
exactly over the evaluated candidates; :class:`RLModelSelector` learns
the best candidate from noisy online feedback with an epsilon-greedy
bandit, the "deep reinforcement learning will be leveraged" direction the
paper sketches, reduced to the tabular case that fits the candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.alem import ALEM, ALEMRequirement, OptimizationTarget
from repro.core.capability import EvaluatedCandidate
from repro.exceptions import ModelSelectionError


@dataclass
class SelectionResult:
    """Outcome of a selection: the winner plus the ranked feasible set."""

    selected: EvaluatedCandidate
    target: OptimizationTarget
    requirement: ALEMRequirement
    feasible: List[EvaluatedCandidate] = field(default_factory=list)
    infeasible: List[EvaluatedCandidate] = field(default_factory=list)

    @property
    def selected_name(self) -> str:
        return self.selected.model_name


class ModelSelector:
    """Exact constrained selection over evaluated (model, package, device) points."""

    def __init__(self, default_target: OptimizationTarget = OptimizationTarget.LATENCY) -> None:
        self.default_target = default_target

    def select(
        self,
        candidates: Sequence[EvaluatedCandidate],
        requirement: Optional[ALEMRequirement] = None,
        target: Optional[OptimizationTarget] = None,
        cache=None,
        cache_key=None,
    ) -> SelectionResult:
        """Solve Eq. (1): optimize ``target`` subject to ``requirement``.

        ``cache``/``cache_key`` hook the fleet serving layer's
        :class:`~repro.serving.cache.SelectionCache` into the hot path:
        when both are given, a cached :class:`SelectionResult` for the key
        is returned without re-ranking, and fresh results are memoized.

        Raises
        ------
        ModelSelectionError
            If no candidate satisfies the constraints (the caller may then
            relax them or fall back to cloud offloading).
        """
        if cache is not None and cache_key is not None:
            cached = cache.get(cache_key)
            if cached is not None:
                return cached
        if not candidates:
            raise ModelSelectionError("no candidates were provided to the selector")
        requirement = requirement or ALEMRequirement()
        target = target or self.default_target
        # one pass, partitioned by identity: value-equality (`c not in feasible`)
        # is O(n^2) and collapses distinct candidates that share an ALEM point
        feasible: List[EvaluatedCandidate] = []
        infeasible: List[EvaluatedCandidate] = []
        for candidate in candidates:
            if candidate.fits_in_memory and requirement.satisfied_by(candidate.alem):
                feasible.append(candidate)
            else:
                infeasible.append(candidate)
        if not feasible:
            raise ModelSelectionError(
                "no model satisfies the requirement "
                f"{requirement!r} on the provided candidates"
            )
        ranked = sorted(feasible, key=lambda c: c.alem.objective_value(target))
        result = SelectionResult(
            selected=ranked[0],
            target=target,
            requirement=requirement,
            feasible=ranked,
            infeasible=infeasible,
        )
        if cache is not None and cache_key is not None:
            cache.put(cache_key, result)
        return result

    def pareto_front(self, candidates: Sequence[EvaluatedCandidate]) -> List[EvaluatedCandidate]:
        """Candidates not Pareto-dominated by any other candidate."""
        front = []
        for candidate in candidates:
            dominated = any(
                other.alem.dominates(candidate.alem) for other in candidates if other is not candidate
            )
            if not dominated:
                front.append(candidate)
        return front


class RLModelSelector:
    """Epsilon-greedy bandit that learns the best model from online reward.

    Each arm is a candidate model; pulling an arm means deploying that
    model for a window of requests and observing a reward that blends the
    (noisy) measured ALEM attributes.  Over episodes the selector
    converges to the candidate the exact optimizer would pick, which the
    Eq. (1) benchmark verifies by comparing regret against brute force.
    """

    def __init__(
        self,
        candidates: Sequence[EvaluatedCandidate],
        requirement: Optional[ALEMRequirement] = None,
        target: OptimizationTarget = OptimizationTarget.LATENCY,
        epsilon: float = 0.15,
        noise_scale: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not candidates:
            raise ModelSelectionError("RLModelSelector needs at least one candidate")
        if not 0.0 <= epsilon <= 1.0:
            raise ModelSelectionError("epsilon must lie in [0, 1]")
        self.candidates = list(candidates)
        self.requirement = requirement or ALEMRequirement()
        self.target = target
        self.epsilon = float(epsilon)
        self.noise_scale = float(noise_scale)
        self._rng = np.random.default_rng(seed)
        self._counts = np.zeros(len(self.candidates))
        self._values = np.zeros(len(self.candidates))

    def _reward(self, candidate: EvaluatedCandidate) -> float:
        """Observed reward: negative objective, heavily penalized when infeasible."""
        alem = candidate.alem
        noisy = ALEM(
            accuracy=float(np.clip(alem.accuracy * (1 + self._rng.normal(0, self.noise_scale / 4)), 0, 1)),
            latency_s=max(1e-9, alem.latency_s * (1 + self._rng.normal(0, self.noise_scale))),
            energy_j=max(0.0, alem.energy_j * (1 + self._rng.normal(0, self.noise_scale))),
            memory_mb=max(0.0, alem.memory_mb * (1 + self._rng.normal(0, self.noise_scale / 4))),
        )
        penalty = 0.0
        if not candidate.fits_in_memory or not self.requirement.satisfied_by(noisy):
            penalty = 1e3
        return -noisy.objective_value(self.target) - penalty

    def step(self) -> int:
        """Play one episode; returns the arm index chosen."""
        if self._rng.random() < self.epsilon or not np.any(self._counts > 0):
            # explore, or nothing has been played yet: pick uniformly
            arm = int(self._rng.integers(0, len(self.candidates)))
        else:
            # greedy over *played* arms only: unplayed arms are masked with
            # -inf so their optimistic 0.0 estimate cannot win the argmax
            arm = int(np.argmax(np.where(self._counts > 0, self._values, -np.inf)))
        reward = self._reward(self.candidates[arm])
        self._counts[arm] += 1
        self._values[arm] += (reward - self._values[arm]) / self._counts[arm]
        return arm

    def train(self, episodes: int = 200) -> EvaluatedCandidate:
        """Run ``episodes`` bandit steps and return the current best candidate."""
        if episodes <= 0:
            raise ModelSelectionError("episodes must be positive")
        for _ in range(episodes):
            self.step()
        return self.best()

    def best(self) -> EvaluatedCandidate:
        """Candidate with the highest estimated value (unplayed arms excluded)."""
        played = np.where(self._counts > 0)[0]
        if played.size == 0:
            raise ModelSelectionError("train must be called before best()")
        best_arm = played[np.argmax(self._values[played])]
        return self.candidates[int(best_arm)]

    def regret_against(self, optimum: EvaluatedCandidate) -> float:
        """Difference in objective value between the learned pick and the optimum."""
        learned = self.best().alem.objective_value(self.target)
        exact = optimum.alem.objective_value(self.target)
        return float(learned - exact)

    @property
    def arm_statistics(self) -> List[Dict[str, float]]:
        """Per-arm play counts and value estimates (for diagnostics)."""
        return [
            {
                "model": self.candidates[i].model_name,
                "plays": float(self._counts[i]),
                "value": float(self._values[i]),
            }
            for i in range(len(self.candidates))
        ]
