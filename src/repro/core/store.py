"""On-disk content-addressed blob store for the durable control plane.

Every registry blob, once published, must survive a process restart —
ROADMAP item 3.  :class:`BlobStore` is the artifact half of that story
(the event half is :mod:`repro.core.wal`):

* **content addressing** — a blob is stored under the SHA-256 of its
  bytes, laid out git-style (``objects/<2-hex>/<62-hex>``) so one
  directory never collects millions of entries.  Storing the same bytes
  twice is a no-op, and the key doubles as the integrity check;
* **atomic writes** — a blob is written to a temp file under the store's
  own ``tmp/`` directory (same filesystem, so the final ``os.replace``
  is atomic), fsynced, then renamed into place and the parent directory
  fsynced.  A reader can therefore *never* observe a partial blob: the
  object path either does not exist or holds fully-written bytes;
* **verification on read** — :meth:`get` re-hashes what it read and
  raises :class:`~repro.exceptions.IntegrityError` on any mismatch, so
  bit rot or a tampered file can never be deserialized into a serving
  model;
* **crash hygiene** — temp files orphaned by a killed writer live only
  under ``tmp/`` and are swept on the next open; they are invisible to
  every read path in the meantime.

The store is thread-safe: concurrent writers of the *same* content race
benignly (both rename the same bytes into the same path), and readers
see only completed renames.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import re
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.exceptions import ConfigurationError, IntegrityError, ResourceNotFoundError

#: A valid content address: 64 lowercase hex chars (SHA-256).
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


def content_key(data: bytes) -> str:
    """The content address of a byte string (SHA-256 hex digest)."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """A content-addressed, crash-safe directory of immutable blobs."""

    def __init__(self, root: Union[str, Path], fsync: bool = True) -> None:
        self.root = Path(root)
        self.fsync = bool(fsync)
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._names = itertools.count()  # guarded-by: _lock
        self.puts = 0  # guarded-by: _lock
        self.dedup_hits = 0  # guarded-by: _lock
        self.gets = 0  # guarded-by: _lock
        self.swept_tmp_files = self._sweep_tmp()

    # -- layout -------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ConfigurationError(
                f"blob keys are 64-char lowercase hex SHA-256 digests, got {key!r}"
            )
        return self._objects / key[:2] / key[2:]

    def _sweep_tmp(self) -> int:
        """Delete temp files orphaned by a crashed writer (run at open)."""
        swept = 0
        for leftover in self._tmp.iterdir():
            if leftover.is_file():
                leftover.unlink()
                swept += 1
        return swept

    def _fsync_dir(self, directory: Path) -> None:
        """Persist a rename: fsync the directory that holds the new entry."""
        if not self.fsync:
            return
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- writing ------------------------------------------------------------------
    def put(self, data: bytes) -> str:
        """Store a blob; returns its content address.

        Idempotent: identical bytes land on the identical path, so a
        second put (even from another thread or a previous process life)
        is a cheap existence check.  The tmpfile + ``os.replace`` dance
        guarantees no reader ever sees a half-written object.
        """
        key = content_key(data)
        path = self._path(key)
        if path.exists():
            with self._lock:
                self.dedup_hits += 1
            return key
        with self._lock:
            tmp = self._tmp / f"{os.getpid()}-{next(self._names)}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        path.parent.mkdir(parents=True, exist_ok=True)
        os.replace(tmp, path)
        self._fsync_dir(path.parent)
        with self._lock:
            self.puts += 1
        return key

    # -- reading ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        """Read one blob, verifying its bytes against the content address."""
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise ResourceNotFoundError(
                f"blob {key[:12]}… is not in the store at {self.root}"
            ) from None
        actual = content_key(data)
        if actual != key:
            raise IntegrityError(
                f"blob {key[:12]}… failed verification: stored bytes hash to "
                f"{actual[:12]}… — the object file was corrupted or tampered with"
            )
        with self._lock:
            self.gets += 1
        return data

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> List[str]:
        """Every stored content address (sorted)."""
        return sorted(self._iter_keys())

    def _iter_keys(self) -> Iterator[str]:
        for prefix_dir in self._objects.iterdir():
            if not prefix_dir.is_dir():
                continue
            for entry in prefix_dir.iterdir():
                key = prefix_dir.name + entry.name
                if _KEY_RE.match(key):
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_keys())

    def nbytes(self) -> int:
        """Total payload bytes currently stored."""
        return sum(
            (self._objects / key[:2] / key[2:]).stat().st_size
            for key in self._iter_keys()
        )

    # -- maintenance --------------------------------------------------------------
    def delete(self, key: str) -> None:
        """Remove one blob (e.g. after registry garbage collection)."""
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            raise ResourceNotFoundError(
                f"blob {key[:12]}… is not in the store at {self.root}"
            ) from None

    def verify_all(self) -> int:
        """Re-hash every stored blob; returns how many verified.

        Raises :class:`~repro.exceptions.IntegrityError` on the first
        blob whose bytes no longer match its address — used by the
        crash-recovery suite to assert no partial object is ever visible.
        """
        verified = 0
        for key in self._iter_keys():
            self.get(key)
            verified += 1
        return verified

    def describe(self) -> Dict[str, object]:
        """Status summary for operator tooling and ``/ei_status``."""
        keys = self.keys()
        with self._lock:
            return {
                "root": str(self.root),
                "blobs": len(keys),
                "bytes_stored": self.nbytes(),
                "puts": self.puts,
                "dedup_hits": self.dedup_hits,
                "gets": self.gets,
                "swept_tmp_files": self.swept_tmp_files,
            }
