"""Cloud simulator.

The cloud of Fig. 3: it trains global models on pooled data, serves them
for download to edges, accepts retrained edge models back and combines
them into a new global model (simple weight averaging, the "combined
into a general and global model" step the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CollaborationError
from repro.hardware.catalog import cloud_datacenter
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import ALEMProfiler
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam


@dataclass
class TrainedModelRecord:
    """A model the cloud has trained and can serve to edges."""

    name: str
    model: Sequential
    input_shape: Tuple[int, ...]
    accuracy: float
    size_bytes: float
    metadata: Dict[str, object] = field(default_factory=dict)


class CloudSimulator:
    """In-process stand-in for the public cloud's training and serving role."""

    def __init__(self, device: Optional[DeviceSpec] = None) -> None:
        self.device = device or cloud_datacenter()
        self.profiler = ALEMProfiler(package_name="cloud-framework", package_efficiency=0.6)
        self._registry: Dict[str, TrainedModelRecord] = {}
        self._uploaded: Dict[str, List[Sequential]] = {}

    # -- training -----------------------------------------------------------
    def train_model(
        self,
        builder: Callable[[], Sequential],
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        input_shape: Tuple[int, ...],
        epochs: int = 10,
        learning_rate: float = 0.005,
        name: Optional[str] = None,
    ) -> TrainedModelRecord:
        """Train a model on pooled cloud data and register it for download."""
        model = builder()
        model.fit(x_train, y_train, epochs=epochs, batch_size=32, optimizer=Adam(learning_rate))
        accuracy = model.evaluate(x_test, y_test)[1]
        record = TrainedModelRecord(
            name=name or model.name,
            model=model,
            input_shape=input_shape,
            accuracy=accuracy,
            size_bytes=model.size_bytes(),
        )
        self._registry[record.name] = record
        return record

    def register(self, record: TrainedModelRecord) -> None:
        """Register an externally trained model for download."""
        self._registry[record.name] = record

    # -- serving ------------------------------------------------------------
    @property
    def available_models(self) -> List[str]:
        """Names of models edges may download."""
        return sorted(self._registry)

    def download(self, name: str) -> TrainedModelRecord:
        """Fetch a trained model record (the edge copies the weights locally)."""
        try:
            record = self._registry[name]
        except KeyError as exc:
            raise CollaborationError(f"cloud has no model named {name!r}") from exc
        clone = record.model.clone_architecture()
        return TrainedModelRecord(
            name=record.name,
            model=clone,
            input_shape=record.input_shape,
            accuracy=record.accuracy,
            size_bytes=record.size_bytes,
            metadata=dict(record.metadata),
        )

    def remote_inference(self, name: str, inputs: np.ndarray) -> np.ndarray:
        """Dataflow 1: the cloud runs inference on uploaded edge data."""
        try:
            record = self._registry[name]
        except KeyError as exc:
            raise CollaborationError(f"cloud has no model named {name!r}") from exc
        return record.model.predict(inputs)

    # -- aggregation -----------------------------------------------------------
    def upload_retrained(self, name: str, model: Sequential) -> None:
        """Accept a retrained model from an edge for later aggregation."""
        if name not in self._registry:
            raise CollaborationError(f"cannot upload against unknown model {name!r}")
        self._uploaded.setdefault(name, []).append(model.clone_architecture())

    def aggregate(self, name: str, include_global: bool = True) -> TrainedModelRecord:
        """Average uploaded edge models (plus optionally the current global one).

        This is the "retrained models will be uploaded to the cloud and
        combined into a general and global model" step of Section II.C —
        federated-averaging style aggregation over full weight vectors.
        """
        uploads = self._uploaded.get(name, [])
        if not uploads:
            raise CollaborationError(f"no uploaded models to aggregate for {name!r}")
        record = self._registry[name]
        participants = list(uploads)
        if include_global:
            participants.append(record.model)
        reference = record.model.clone_architecture()
        weight_dicts = [participant.get_weights() for participant in participants]
        averaged = {
            key: np.mean([weights[key] for weights in weight_dicts], axis=0)
            for key in weight_dicts[0]
        }
        reference.set_weights(averaged)
        new_record = TrainedModelRecord(
            name=record.name,
            model=reference,
            input_shape=record.input_shape,
            accuracy=record.accuracy,
            size_bytes=record.size_bytes,
            metadata={**record.metadata, "aggregated_from": len(participants)},
        )
        self._registry[name] = new_record
        self._uploaded[name] = []
        return new_record
