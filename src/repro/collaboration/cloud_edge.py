"""The three EI dataflows of Fig. 3 and edge transfer learning.

Dataflow 1: upload edge data to the cloud, infer there, return results.
Dataflow 2: download the cloud-trained model once, infer on the edge.
Dataflow 3: additionally retrain the downloaded model on local edge data
            (transfer learning) to obtain a personalized model.

:class:`DataflowRunner` executes each flow on the same workload and
returns comparable latency / bytes-transferred / accuracy metrics, which
is exactly what the Fig. 3 benchmark reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

import numpy as np

from repro.collaboration.cloud import CloudSimulator
from repro.exceptions import CollaborationError, ModelSelectionError
from repro.hardware.device import DeviceSpec, NetworkLink
from repro.hardware.profiler import ALEMProfiler
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, Optimizer

if TYPE_CHECKING:  # repro.core imports this module (TransferLearner), so the
    # reverse imports must stay lazy to avoid a cycle; see OffloadPlan/plan()
    from repro.core.alem import ALEM, ALEMRequirement, OptimizationTarget
    from repro.core.model_zoo import ModelZoo
    from repro.core.registry import ModelRegistry, VersionRef


@dataclass
class DataflowMetrics:
    """Outcome of running one dataflow on a workload."""

    dataflow: str
    total_latency_s: float
    bytes_uploaded: float
    bytes_downloaded: float
    accuracy: float
    per_sample_latency_s: float

    def as_dict(self) -> dict:
        return {
            "dataflow": self.dataflow,
            "total_latency_s": self.total_latency_s,
            "bytes_uploaded": self.bytes_uploaded,
            "bytes_downloaded": self.bytes_downloaded,
            "accuracy": self.accuracy,
            "per_sample_latency_s": self.per_sample_latency_s,
        }


class TransferLearner:
    """Dataflow 3's local retraining step: fine-tune only the classifier head.

    Freezing all layers except the last parametric one is the standard
    low-cost transfer-learning recipe and keeps edge training affordable,
    matching "retrain the model by transfer learning based on the data
    they generated".
    """

    def __init__(self, epochs: int = 5, learning_rate: float = 0.01, batch_size: int = 32) -> None:
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)

    def retrain(
        self,
        model: Sequential,
        x_local: np.ndarray,
        y_local: np.ndarray,
        optimizer: Optional[Optimizer] = None,
    ) -> Sequential:
        """Fine-tune the final parametric layer on local data; returns the same model."""
        parametric = [layer for layer in model.layers if layer.param_count() > 0]
        if not parametric:
            raise CollaborationError("model has no trainable layers to fine-tune")
        frozen = []
        for layer in model.layers:
            if layer.param_count() > 0 and layer is not parametric[-1] and layer.trainable:
                layer.trainable = False
                frozen.append(layer)
        try:
            model.fit(
                x_local,
                y_local,
                epochs=self.epochs,
                batch_size=self.batch_size,
                optimizer=optimizer or Adam(self.learning_rate),
            )
        finally:
            for layer in frozen:
                layer.trainable = True
        model.metadata["personalized"] = True
        return model


@dataclass(frozen=True)
class OffloadPlan:
    """The cloud-side serving plan for one task, as costed from the edge.

    ``alem`` is the expected per-request capability seen by the edge: the
    cloud device's inference latency plus the uplink/downlink transfer
    time, with zero edge-resident memory and zero edge compute energy.
    ``satisfied`` records whether even the cloud meets the requirement —
    offloading is a last resort, so a best-effort plan is still returned
    when it does not.
    """

    model_name: str
    alem: ALEM
    satisfied: bool

    def as_dict(self) -> dict:
        return {
            "model": self.model_name,
            "satisfied": self.satisfied,
            **self.alem.as_dict(),
        }


class CloudOffloadPlanner:
    """Dataflow-1 costing reused as a serving fallback.

    When the adaptive control plane finds no edge model feasible any
    more, the remaining option is the paper's first dataflow: ship the
    request to the cloud, infer there, ship the result back.  The planner
    prices that option per request — cloud profile latency plus the
    round-trip link transfer — and picks the best cloud-served model for
    the optimization target.
    """

    def __init__(
        self,
        cloud: CloudSimulator,
        link: NetworkLink,
        request_bytes: float = 1024.0,
        result_bytes: float = 256.0,
    ) -> None:
        if request_bytes < 0 or result_bytes < 0:
            raise CollaborationError("request_bytes and result_bytes must be non-negative")
        self.cloud = cloud
        self.link = link
        self.request_bytes = float(request_bytes)
        self.result_bytes = float(result_bytes)

    def round_trip_seconds(self) -> float:
        """Per-request uplink + downlink transfer time."""
        return self.link.transfer_seconds(self.request_bytes) + self.link.transfer_seconds(
            self.result_bytes
        )

    def plan(
        self,
        zoo: "ModelZoo",
        task: Optional[str] = None,
        requirement: Optional["ALEMRequirement"] = None,
        target: Optional["OptimizationTarget"] = None,
        accuracies: Optional[Mapping[str, float]] = None,
    ) -> OffloadPlan:
        """Choose the cloud-served model for a task and cost it per request.

        ``accuracies`` carries the edge's measured accuracies over (model
        accuracy is device independent, so the numbers transfer).
        ``target`` defaults to latency.

        Raises
        ------
        ModelSelectionError
            If the zoo holds no model for the task at all.
        """
        from repro.core.alem import ALEM, ALEMRequirement, OptimizationTarget
        from repro.core.capability import CapabilityEvaluator

        requirement = requirement or ALEMRequirement()
        target = target or OptimizationTarget.LATENCY
        evaluator = CapabilityEvaluator(zoo, self.cloud.profiler)
        for name, accuracy in (accuracies or {}).items():
            evaluator.set_accuracy(name, accuracy)
        candidates = evaluator.evaluate_all(self.cloud.device, task=task)
        if not candidates:
            raise ModelSelectionError(
                f"no zoo model for task {task!r} is available to offload to the cloud"
            )
        transfer = self.round_trip_seconds()
        plans = []
        for candidate in candidates:
            alem = ALEM(
                accuracy=candidate.alem.accuracy,
                latency_s=candidate.alem.latency_s + transfer,
                energy_j=0.0,       # edge-side compute energy: the cloud pays it
                memory_mb=0.0,      # nothing stays resident on the edge
            )
            plans.append(OffloadPlan(
                model_name=candidate.model_name,
                alem=alem,
                satisfied=requirement.satisfied_by(alem),
            ))
        satisfied = [p for p in plans if p.satisfied]
        pool = satisfied or plans
        return min(pool, key=lambda p: p.alem.objective_value(target))


@dataclass(frozen=True)
class SyncPlan:
    """The priced download of one registry version over one link.

    ``mode`` is ``"up-to-date"`` (nothing to transfer), ``"delta"`` (the
    edge holds a related artifact and only changed arrays travel) or
    ``"full"`` (cold download).  ``saved_bytes`` is what the delta
    avoided relative to the full artifact.
    """

    ref: str
    fingerprint: str
    mode: str
    transfer_bytes: int
    transfer_seconds: float
    saved_bytes: int

    def as_dict(self) -> dict:
        return {
            "ref": self.ref,
            "fingerprint": self.fingerprint[:12],
            "mode": self.mode,
            "transfer_bytes": self.transfer_bytes,
            "transfer_seconds": self.transfer_seconds,
            "saved_bytes": self.saved_bytes,
        }


class ModelSyncPlanner:
    """Prices registry downloads to an edge over a network link.

    The paper's dataflow 2 downloads the whole model every time; with the
    versioned :class:`~repro.core.registry.ModelRegistry` recording
    per-array content digests, an edge that already holds a related
    version (the previous rollout, or the compressed variant's base)
    only needs the arrays that changed.  The planner turns the
    registry's :meth:`~repro.core.registry.ModelRegistry.delta_bytes`
    into link seconds so rollout tooling can schedule transfers.
    """

    def __init__(self, registry: "ModelRegistry", link: NetworkLink) -> None:
        self.registry = registry
        self.link = link

    def plan(
        self,
        name: str,
        version: Optional[int] = None,
        have: Optional["VersionRef"] = None,
    ) -> SyncPlan:
        """Cost bringing an edge that holds ``have`` up to ``name@version``."""
        target = self.registry.get(name, version)
        transfer = self.registry.delta_bytes(name, target.version, have=have)
        if have is not None and transfer == 0:
            mode = "up-to-date"
        elif have is not None and transfer < target.size_bytes:
            mode = "delta"
        else:
            mode = "full"
        return SyncPlan(
            ref=target.ref,
            fingerprint=target.fingerprint,
            mode=mode,
            transfer_bytes=transfer,
            transfer_seconds=(
                0.0 if transfer == 0 else self.link.transfer_seconds(transfer)
            ),
            saved_bytes=target.size_bytes - transfer,
        )


class DataflowRunner:
    """Execute the three Fig. 3 dataflows on a common workload."""

    def __init__(
        self,
        cloud: CloudSimulator,
        edge_device: DeviceSpec,
        link: NetworkLink,
        edge_profiler: Optional[ALEMProfiler] = None,
        result_bytes: float = 256.0,
    ) -> None:
        self.cloud = cloud
        self.edge_device = edge_device
        self.link = link
        self.edge_profiler = edge_profiler or ALEMProfiler()
        self.result_bytes = float(result_bytes)

    # -- dataflow 1 ---------------------------------------------------------
    def cloud_inference(
        self,
        model_name: str,
        x: np.ndarray,
        y: np.ndarray,
        bytes_per_sample: Optional[float] = None,
    ) -> DataflowMetrics:
        """Upload every sample to the cloud, infer there, download results."""
        record = self.cloud.download(model_name)
        # an explicit 0.0 (e.g. pre-staged data) must not fall back to nbytes
        if bytes_per_sample is None:
            bytes_per_sample = float(x[0].nbytes)
        upload_bytes = bytes_per_sample * len(x)
        upload_time = self.link.transfer_seconds(bytes_per_sample) * len(x)
        cloud_profile = self.cloud.profiler.profile(record.model, record.input_shape, self.cloud.device)
        compute_time = cloud_profile.latency_s * len(x)
        download_time = self.link.transfer_seconds(self.result_bytes) * len(x)
        predictions = self.cloud.remote_inference(model_name, x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        total = upload_time + compute_time + download_time
        return DataflowMetrics(
            dataflow="cloud-inference",
            total_latency_s=total,
            bytes_uploaded=upload_bytes,
            bytes_downloaded=self.result_bytes * len(x),
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )

    # -- dataflow 2 ---------------------------------------------------------
    def edge_inference(
        self, model_name: str, x: np.ndarray, y: np.ndarray
    ) -> Tuple[DataflowMetrics, Sequential]:
        """Download the model once, then infer locally on the edge."""
        record = self.cloud.download(model_name)
        download_time = self.link.transfer_seconds(record.size_bytes)
        profile = self.edge_profiler.profile(record.model, record.input_shape, self.edge_device)
        compute_time = profile.latency_s * len(x)
        predictions = record.model.predict(x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        total = download_time + compute_time
        metrics = DataflowMetrics(
            dataflow="edge-inference",
            total_latency_s=total,
            bytes_uploaded=0.0,
            bytes_downloaded=record.size_bytes,
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )
        return metrics, record.model

    # -- dataflow 3 ---------------------------------------------------------
    def edge_retraining(
        self,
        model_name: str,
        x_local_train: np.ndarray,
        y_local_train: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        learner: Optional[TransferLearner] = None,
        upload_to_cloud: bool = True,
    ) -> Tuple[DataflowMetrics, Sequential]:
        """Download, retrain locally on edge data, infer with the personalized model."""
        learner = learner or TransferLearner()
        record = self.cloud.download(model_name)
        download_time = self.link.transfer_seconds(record.size_bytes)
        training_time = self.edge_profiler.profile_training(
            record.model,
            record.input_shape,
            self.edge_device,
            samples=len(x_local_train),
            epochs=learner.epochs,
        )
        # retrain a private copy: the record's model may be shared (a cloud
        # implementation that serves its registry object directly would
        # otherwise hand every later caller a silently personalized model)
        local_model = copy.deepcopy(record.model)
        personalized = learner.retrain(local_model, x_local_train, y_local_train)
        profile = self.edge_profiler.profile(personalized, record.input_shape, self.edge_device)
        compute_time = profile.latency_s * len(x)
        predictions = personalized.predict(x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        upload_bytes = record.size_bytes if upload_to_cloud else 0.0
        if upload_to_cloud:
            self.cloud.upload_retrained(model_name, personalized)
        total = download_time + training_time + compute_time
        metrics = DataflowMetrics(
            dataflow="edge-retraining",
            total_latency_s=total,
            bytes_uploaded=upload_bytes,
            bytes_downloaded=record.size_bytes,
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )
        return metrics, personalized
