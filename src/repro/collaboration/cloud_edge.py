"""The three EI dataflows of Fig. 3 and edge transfer learning.

Dataflow 1: upload edge data to the cloud, infer there, return results.
Dataflow 2: download the cloud-trained model once, infer on the edge.
Dataflow 3: additionally retrain the downloaded model on local edge data
            (transfer learning) to obtain a personalized model.

:class:`DataflowRunner` executes each flow on the same workload and
returns comparable latency / bytes-transferred / accuracy metrics, which
is exactly what the Fig. 3 benchmark reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.collaboration.cloud import CloudSimulator
from repro.exceptions import CollaborationError
from repro.hardware.device import DeviceSpec, NetworkLink
from repro.hardware.profiler import ALEMProfiler
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, Optimizer


@dataclass
class DataflowMetrics:
    """Outcome of running one dataflow on a workload."""

    dataflow: str
    total_latency_s: float
    bytes_uploaded: float
    bytes_downloaded: float
    accuracy: float
    per_sample_latency_s: float

    def as_dict(self) -> dict:
        return {
            "dataflow": self.dataflow,
            "total_latency_s": self.total_latency_s,
            "bytes_uploaded": self.bytes_uploaded,
            "bytes_downloaded": self.bytes_downloaded,
            "accuracy": self.accuracy,
            "per_sample_latency_s": self.per_sample_latency_s,
        }


class TransferLearner:
    """Dataflow 3's local retraining step: fine-tune only the classifier head.

    Freezing all layers except the last parametric one is the standard
    low-cost transfer-learning recipe and keeps edge training affordable,
    matching "retrain the model by transfer learning based on the data
    they generated".
    """

    def __init__(self, epochs: int = 5, learning_rate: float = 0.01, batch_size: int = 32) -> None:
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)

    def retrain(
        self,
        model: Sequential,
        x_local: np.ndarray,
        y_local: np.ndarray,
        optimizer: Optional[Optimizer] = None,
    ) -> Sequential:
        """Fine-tune the final parametric layer on local data; returns the same model."""
        parametric = [layer for layer in model.layers if layer.param_count() > 0]
        if not parametric:
            raise CollaborationError("model has no trainable layers to fine-tune")
        frozen = []
        for layer in model.layers:
            if layer.param_count() > 0 and layer is not parametric[-1] and layer.trainable:
                layer.trainable = False
                frozen.append(layer)
        try:
            model.fit(
                x_local,
                y_local,
                epochs=self.epochs,
                batch_size=self.batch_size,
                optimizer=optimizer or Adam(self.learning_rate),
            )
        finally:
            for layer in frozen:
                layer.trainable = True
        model.metadata["personalized"] = True
        return model


class DataflowRunner:
    """Execute the three Fig. 3 dataflows on a common workload."""

    def __init__(
        self,
        cloud: CloudSimulator,
        edge_device: DeviceSpec,
        link: NetworkLink,
        edge_profiler: Optional[ALEMProfiler] = None,
        result_bytes: float = 256.0,
    ) -> None:
        self.cloud = cloud
        self.edge_device = edge_device
        self.link = link
        self.edge_profiler = edge_profiler or ALEMProfiler()
        self.result_bytes = float(result_bytes)

    # -- dataflow 1 ---------------------------------------------------------
    def cloud_inference(
        self,
        model_name: str,
        x: np.ndarray,
        y: np.ndarray,
        bytes_per_sample: Optional[float] = None,
    ) -> DataflowMetrics:
        """Upload every sample to the cloud, infer there, download results."""
        record = self.cloud.download(model_name)
        # an explicit 0.0 (e.g. pre-staged data) must not fall back to nbytes
        if bytes_per_sample is None:
            bytes_per_sample = float(x[0].nbytes)
        upload_bytes = bytes_per_sample * len(x)
        upload_time = self.link.transfer_seconds(bytes_per_sample) * len(x)
        cloud_profile = self.cloud.profiler.profile(record.model, record.input_shape, self.cloud.device)
        compute_time = cloud_profile.latency_s * len(x)
        download_time = self.link.transfer_seconds(self.result_bytes) * len(x)
        predictions = self.cloud.remote_inference(model_name, x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        total = upload_time + compute_time + download_time
        return DataflowMetrics(
            dataflow="cloud-inference",
            total_latency_s=total,
            bytes_uploaded=upload_bytes,
            bytes_downloaded=self.result_bytes * len(x),
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )

    # -- dataflow 2 ---------------------------------------------------------
    def edge_inference(
        self, model_name: str, x: np.ndarray, y: np.ndarray
    ) -> Tuple[DataflowMetrics, Sequential]:
        """Download the model once, then infer locally on the edge."""
        record = self.cloud.download(model_name)
        download_time = self.link.transfer_seconds(record.size_bytes)
        profile = self.edge_profiler.profile(record.model, record.input_shape, self.edge_device)
        compute_time = profile.latency_s * len(x)
        predictions = record.model.predict(x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        total = download_time + compute_time
        metrics = DataflowMetrics(
            dataflow="edge-inference",
            total_latency_s=total,
            bytes_uploaded=0.0,
            bytes_downloaded=record.size_bytes,
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )
        return metrics, record.model

    # -- dataflow 3 ---------------------------------------------------------
    def edge_retraining(
        self,
        model_name: str,
        x_local_train: np.ndarray,
        y_local_train: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        learner: Optional[TransferLearner] = None,
        upload_to_cloud: bool = True,
    ) -> Tuple[DataflowMetrics, Sequential]:
        """Download, retrain locally on edge data, infer with the personalized model."""
        learner = learner or TransferLearner()
        record = self.cloud.download(model_name)
        download_time = self.link.transfer_seconds(record.size_bytes)
        training_time = self.edge_profiler.profile_training(
            record.model,
            record.input_shape,
            self.edge_device,
            samples=len(x_local_train),
            epochs=learner.epochs,
        )
        # retrain a private copy: the record's model may be shared (a cloud
        # implementation that serves its registry object directly would
        # otherwise hand every later caller a silently personalized model)
        local_model = copy.deepcopy(record.model)
        personalized = learner.retrain(local_model, x_local_train, y_local_train)
        profile = self.edge_profiler.profile(personalized, record.input_shape, self.edge_device)
        compute_time = profile.latency_s * len(x)
        predictions = personalized.predict(x)
        accuracy = float(np.mean(predictions.argmax(axis=1) == y))
        upload_bytes = record.size_bytes if upload_to_cloud else 0.0
        if upload_to_cloud:
            self.cloud.upload_retrained(model_name, personalized)
        total = download_time + training_time + compute_time
        metrics = DataflowMetrics(
            dataflow="edge-retraining",
            total_latency_s=total,
            bytes_uploaded=upload_bytes,
            bytes_downloaded=record.size_bytes,
            accuracy=accuracy,
            per_sample_latency_s=total / len(x),
        )
        return metrics, personalized
