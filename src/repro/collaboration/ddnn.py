"""Distributed deep neural networks over cloud and edge (DDNN, Teerapittayanon et al.).

The paper cites DDNN as the canonical cloud-edge collaborative inference
architecture: a shallow *edge branch* classifies easy samples locally and
forwards only uncertain ones (as a compact intermediate feature vector)
to the full cloud model.  :class:`DDNNInference` reproduces this exit
policy and accounts for the latency and bandwidth saved, which the Fig. 2
collaboration benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import CollaborationError
from repro.hardware.device import DeviceSpec, NetworkLink
from repro.hardware.profiler import ALEMProfiler
from repro.nn.model import Sequential


@dataclass
class DDNNResult:
    """Outcome of a DDNN inference pass over a batch."""

    accuracy: float
    local_exit_fraction: float
    total_latency_s: float
    bytes_uploaded: float
    edge_only_accuracy: float
    cloud_only_latency_s: float

    @property
    def latency_saving(self) -> float:
        """Fraction of the cloud-only latency avoided."""
        if self.cloud_only_latency_s <= 0:
            return 0.0
        return 1.0 - self.total_latency_s / self.cloud_only_latency_s


class DDNNInference:
    """Early-exit inference split between an edge model and a cloud model."""

    def __init__(
        self,
        edge_model: Sequential,
        cloud_model: Sequential,
        edge_device: DeviceSpec,
        cloud_device: DeviceSpec,
        link: NetworkLink,
        input_shape: Tuple[int, ...],
        confidence_threshold: float = 0.8,
        edge_profiler: Optional[ALEMProfiler] = None,
        cloud_profiler: Optional[ALEMProfiler] = None,
        feature_bytes: float = 512.0,
    ) -> None:
        if not 0.0 < confidence_threshold <= 1.0:
            raise CollaborationError("confidence_threshold must lie in (0, 1]")
        self.edge_model = edge_model
        self.cloud_model = cloud_model
        self.edge_device = edge_device
        self.cloud_device = cloud_device
        self.link = link
        self.input_shape = tuple(input_shape)
        self.confidence_threshold = float(confidence_threshold)
        self.edge_profiler = edge_profiler or ALEMProfiler()
        self.cloud_profiler = cloud_profiler or ALEMProfiler(
            package_name="cloud-framework", package_efficiency=0.6
        )
        self.feature_bytes = float(feature_bytes)

    def run(self, x: np.ndarray, y: np.ndarray) -> DDNNResult:
        """Classify a batch with the edge branch, escalating low-confidence samples."""
        if len(x) == 0:
            raise CollaborationError("cannot run DDNN inference on an empty batch")
        edge_profile = self.edge_profiler.profile(self.edge_model, self.input_shape, self.edge_device)
        cloud_profile = self.cloud_profiler.profile(self.cloud_model, self.input_shape, self.cloud_device)

        edge_probs = self.edge_model.predict(x)
        confident = edge_probs.max(axis=1) >= self.confidence_threshold
        predictions = edge_probs.argmax(axis=1)

        escalate = ~confident
        bytes_uploaded = float(escalate.sum()) * self.feature_bytes
        if escalate.any():
            cloud_probs = self.cloud_model.predict(x[escalate])
            predictions[escalate] = cloud_probs.argmax(axis=1)

        edge_latency = edge_profile.latency_s * len(x)
        escalation_latency = float(escalate.sum()) * (
            self.link.transfer_seconds(self.feature_bytes) + cloud_profile.latency_s
        )
        total_latency = edge_latency + escalation_latency

        # Reference points: pure edge and pure cloud execution of the same batch.
        edge_only_accuracy = float(np.mean(edge_probs.argmax(axis=1) == y))
        per_sample_upload = float(x[0].nbytes)
        cloud_only_latency = len(x) * (
            self.link.transfer_seconds(per_sample_upload) + cloud_profile.latency_s
        )
        accuracy = float(np.mean(predictions == y))
        return DDNNResult(
            accuracy=accuracy,
            local_exit_fraction=float(np.mean(confident)),
            total_latency_s=total_latency,
            bytes_uploaded=bytes_uploaded,
            edge_only_accuracy=edge_only_accuracy,
            cloud_only_latency_s=cloud_only_latency,
        )
