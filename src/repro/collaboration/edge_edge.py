"""Edge-edge collaboration (Section II.C, second mode).

Two cooperation patterns are implemented:

1. **Compute-proportional work allocation** — a compute-intensive job
   (e.g. training a large network) is split across several edges in
   proportion to their compute power, so all finish at roughly the same
   time; :class:`EdgeCluster.allocate_training` returns the plan and the
   resulting parallel makespan versus single-edge execution.
2. **Task coordination** — several edges each take a different sub-task
   of a pipeline (the smart-home "phone predicts arrival, thermostat
   pre-heats" example); :meth:`EdgeCluster.run_pipeline` executes stages
   on their assigned runtimes and reports the end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CollaborationError
from repro.hardware.device import NetworkLink
from repro.runtime.edgeos import EdgeRuntime
from repro.runtime.tasks import Task


@dataclass
class CollaborativeTrainingPlan:
    """How a training job is split across edges."""

    shares: Dict[str, float]           # runtime name -> fraction of the work
    per_edge_seconds: Dict[str, float]  # runtime name -> time to finish its share
    makespan_s: float                   # parallel completion time
    single_edge_seconds: float          # time if the strongest edge did it all

    @property
    def speedup(self) -> float:
        """Single-edge time over collaborative makespan."""
        return self.single_edge_seconds / self.makespan_s if self.makespan_s > 0 else float("inf")


class EdgeCluster:
    """A set of cooperating edge runtimes connected by a LAN-class link."""

    def __init__(self, runtimes: Sequence[EdgeRuntime], link: Optional[NetworkLink] = None) -> None:
        if not runtimes:
            raise CollaborationError("EdgeCluster needs at least one runtime")
        names = [r.name for r in runtimes]
        if len(set(names)) != len(names):
            raise CollaborationError("runtime names must be unique within a cluster")
        self.runtimes = {r.name: r for r in runtimes}
        self.link = link or NetworkLink(name="cluster-lan", bandwidth_mbps=200.0, latency_ms=2.0)

    # -- compute-proportional allocation ------------------------------------
    def allocate_training(
        self, total_compute_gflop: float, sync_bytes: float = 0.0
    ) -> CollaborativeTrainingPlan:
        """Split ``total_compute_gflop`` of training work proportionally to device power."""
        if total_compute_gflop <= 0:
            raise CollaborationError("total_compute_gflop must be positive")
        powers = {name: rt.device.peak_gflops for name, rt in self.runtimes.items()}
        total_power = sum(powers.values())
        shares = {name: power / total_power for name, power in powers.items()}
        sync_overhead = self.link.transfer_seconds(sync_bytes) if sync_bytes else 0.0
        per_edge_seconds = {
            name: total_compute_gflop * share / powers[name] + sync_overhead
            for name, share in shares.items()
        }
        makespan = max(per_edge_seconds.values())
        strongest = max(powers.values())
        single = total_compute_gflop / strongest
        return CollaborativeTrainingPlan(
            shares=shares,
            per_edge_seconds=per_edge_seconds,
            makespan_s=makespan,
            single_edge_seconds=single,
        )

    # -- multi-edge pipelines ---------------------------------------------------
    def run_pipeline(
        self, stages: Sequence[Tuple[str, Task]], payload_bytes: float = 1024.0
    ) -> Tuple[float, List[Task]]:
        """Run pipeline stages on their assigned runtimes, chaining hand-offs.

        ``stages`` is a list of ``(runtime_name, task)``; consecutive
        stages on different runtimes pay one link transfer for the
        intermediate payload.  Returns the end-to-end latency and the
        executed tasks.
        """
        if not stages:
            raise CollaborationError("pipeline needs at least one stage")
        total = 0.0
        executed: List[Task] = []
        previous_runtime: Optional[str] = None
        for runtime_name, task in stages:
            runtime = self.runtimes.get(runtime_name)
            if runtime is None:
                raise CollaborationError(f"unknown runtime {runtime_name!r} in pipeline")
            if previous_runtime is not None and previous_runtime != runtime_name:
                total += self.link.transfer_seconds(payload_bytes)
            runtime.submit(task)
            runtime.run_pending()
            total += task.compute_seconds
            executed.append(task)
            previous_runtime = runtime_name
        return total, executed

    def total_compute_gflops(self) -> float:
        """Aggregate peak compute of the cluster."""
        return sum(rt.device.peak_gflops for rt in self.runtimes.values())
