"""Cloud-edge and edge-edge collaboration (Section II.C/II.D of the paper).

* :mod:`repro.collaboration.cloud` — the cloud simulator: trains global
  models, serves model downloads, accepts uploaded retrained models and
  aggregates them into a new global model.
* :mod:`repro.collaboration.cloud_edge` — the three EI dataflows of
  Fig. 3 (cloud inference, edge inference, edge retraining via transfer
  learning) with latency/bandwidth/accuracy accounting.
* :mod:`repro.collaboration.edge_edge` — edge-edge collaboration:
  allocating a compute-intensive job across edges proportionally to their
  compute power, and multi-edge task coordination.
* :mod:`repro.collaboration.ddnn` — distributed DNN inference across edge
  and cloud with an early-exit branch on the edge (Teerapittayanon et al.).
"""

from repro.collaboration.cloud import CloudSimulator, TrainedModelRecord
from repro.collaboration.cloud_edge import (
    CloudOffloadPlanner,
    DataflowMetrics,
    DataflowRunner,
    ModelSyncPlanner,
    OffloadPlan,
    SyncPlan,
    TransferLearner,
)
from repro.collaboration.ddnn import DDNNInference, DDNNResult
from repro.collaboration.edge_edge import CollaborativeTrainingPlan, EdgeCluster
from repro.collaboration.federation import (
    FederatedClient,
    FederatedResult,
    FederatedTrainer,
    split_dataset_across_edges,
)

__all__ = [
    "CloudOffloadPlanner",
    "CloudSimulator",
    "CollaborativeTrainingPlan",
    "DDNNInference",
    "DDNNResult",
    "DataflowMetrics",
    "DataflowRunner",
    "EdgeCluster",
    "FederatedClient",
    "FederatedResult",
    "FederatedTrainer",
    "ModelSyncPlanner",
    "OffloadPlan",
    "SyncPlan",
    "split_dataset_across_edges",
    "TrainedModelRecord",
    "TransferLearner",
]
