"""Federated learning across edges (the cloud-edge collaboration loop, iterated).

Section II.C's loop — edges retrain the downloaded model on local data,
upload it, the cloud combines the uploads into a new global model — is a
federated-averaging round.  This module runs that loop for multiple
rounds over a set of simulated edge clients, tracking global accuracy and
the bytes that crossed the WAN, so the collaboration benchmarks and the
smart-home/health examples can quantify the privacy-preserving training
path (no raw data ever leaves an edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CollaborationError
from repro.hardware.device import NetworkLink, WAN_LINK
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam


@dataclass
class FederatedClient:
    """One participating edge: a name and its private local dataset."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise CollaborationError(f"client {self.name!r} has misaligned data")
        if len(self.x_train) == 0:
            raise CollaborationError(f"client {self.name!r} has no local data")

    @property
    def samples(self) -> int:
        return len(self.x_train)


@dataclass
class FederatedRound:
    """Metrics for one federated round."""

    round_index: int
    global_accuracy: float
    mean_client_accuracy: float
    bytes_uplink: float
    bytes_downlink: float
    wall_clock_s: float


@dataclass
class FederatedResult:
    """Outcome of a full federated training run."""

    rounds: List[FederatedRound] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.rounds[-1].global_accuracy if self.rounds else 0.0

    @property
    def total_uplink_bytes(self) -> float:
        return sum(r.bytes_uplink for r in self.rounds)

    def accuracy_curve(self) -> List[float]:
        """Global accuracy after each round."""
        return [r.global_accuracy for r in self.rounds]


class FederatedTrainer:
    """Federated averaging over edge clients with a weight-sized communication model.

    The global model is broadcast each round; every client trains locally
    for ``local_epochs`` and uploads its weights; the server averages them
    weighted by client sample counts (FedAvg).  Raw training data never
    moves, which is the privacy property Sections V.C/V.D lean on.
    """

    def __init__(
        self,
        model_builder: Callable[[], Sequential],
        clients: Sequence[FederatedClient],
        link: Optional[NetworkLink] = None,
        local_epochs: int = 2,
        local_batch_size: int = 32,
        learning_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise CollaborationError("federated training needs at least one client")
        if local_epochs <= 0 or local_batch_size <= 0:
            raise CollaborationError("local_epochs and local_batch_size must be positive")
        self.model_builder = model_builder
        self.clients = list(clients)
        self.link = link or WAN_LINK
        self.local_epochs = int(local_epochs)
        self.local_batch_size = int(local_batch_size)
        self.learning_rate = float(learning_rate)
        self.global_model = model_builder()
        self._rng = np.random.default_rng(seed)

    # -- internals -----------------------------------------------------------
    def _client_update(self, client: FederatedClient) -> Dict[str, np.ndarray]:
        """Train a copy of the global model on one client's private data."""
        local = self.global_model.clone_architecture()
        local.fit(
            client.x_train,
            client.y_train,
            epochs=self.local_epochs,
            batch_size=self.local_batch_size,
            optimizer=Adam(self.learning_rate),
            rng=self._rng,
        )
        return local.get_weights()

    @staticmethod
    def _weighted_average(
        updates: Sequence[Tuple[int, Dict[str, np.ndarray]]]
    ) -> Dict[str, np.ndarray]:
        total = float(sum(weight for weight, _ in updates))
        keys = updates[0][1].keys()
        return {
            key: sum(weight * weights[key] for weight, weights in updates) / total
            for key in keys
        }

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        rounds: int,
        x_test: np.ndarray,
        y_test: np.ndarray,
        clients_per_round: Optional[int] = None,
    ) -> FederatedResult:
        """Run federated averaging and return per-round metrics.

        ``clients_per_round`` subsamples participants each round (all by
        default), modelling edges that are offline or on battery.
        """
        if rounds <= 0:
            raise CollaborationError("rounds must be positive")
        participants_per_round = clients_per_round or len(self.clients)
        participants_per_round = min(participants_per_round, len(self.clients))
        model_bytes = self.global_model.size_bytes()
        result = FederatedResult()
        for round_index in range(1, rounds + 1):
            chosen_idx = self._rng.choice(
                len(self.clients), size=participants_per_round, replace=False
            )
            chosen = [self.clients[i] for i in chosen_idx]
            updates = []
            client_accuracies = []
            for client in chosen:
                weights = self._client_update(client)
                updates.append((client.samples, weights))
                probe = self.global_model.clone_architecture()
                probe.set_weights(weights)
                client_accuracies.append(probe.evaluate(x_test, y_test)[1])
            self.global_model.set_weights(self._weighted_average(updates))
            global_accuracy = self.global_model.evaluate(x_test, y_test)[1]
            downlink = model_bytes * len(chosen)
            uplink = model_bytes * len(chosen)
            wall_clock = self.link.transfer_seconds(model_bytes) * 2  # broadcast + slowest upload
            result.rounds.append(
                FederatedRound(
                    round_index=round_index,
                    global_accuracy=global_accuracy,
                    mean_client_accuracy=float(np.mean(client_accuracies)),
                    bytes_uplink=uplink,
                    bytes_downlink=downlink,
                    wall_clock_s=wall_clock,
                )
            )
        return result


def split_dataset_across_edges(
    x: np.ndarray,
    y: np.ndarray,
    edge_names: Sequence[str],
    heterogeneity: float = 0.0,
    seed: int = 0,
) -> List[FederatedClient]:
    """Partition a dataset into per-edge private shards.

    ``heterogeneity`` in [0, 1) skews the label distribution per edge
    (0 = IID shards, higher = each edge sees mostly a subset of classes),
    reproducing the "temporal-spatial diversity of edge data" the paper
    names as the data-sharing obstacle.
    """
    if not edge_names:
        raise CollaborationError("at least one edge name is required")
    if not 0.0 <= heterogeneity < 1.0:
        raise CollaborationError("heterogeneity must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    classes = np.unique(y)
    edge_count = len(edge_names)
    assignments: List[List[int]] = [[] for _ in range(edge_count)]
    for cls in classes:
        indices = np.flatnonzero(y == cls)
        rng.shuffle(indices)
        preferred = int(rng.integers(0, edge_count))
        for position, index in enumerate(indices):
            if rng.random() < heterogeneity:
                edge = preferred
            else:
                edge = (position + preferred) % edge_count
            assignments[edge].append(int(index))
    clients = []
    for name, indices in zip(edge_names, assignments):
        if not indices:  # guarantee every edge has data
            indices = [int(rng.integers(0, len(x)))]
        idx = np.array(indices)
        clients.append(FederatedClient(name=name, x_train=x[idx], y_train=y[idx]))
    return clients
