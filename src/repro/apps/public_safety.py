"""Video Analytics in Public Safety (Section V.A).

Two algorithms are exposed, matching the URLs in Fig. 4 and Fig. 6:

* ``safety/detection`` — object detection on a camera frame: a
  lightweight intensity-blob detector returns scored bounding boxes that
  are evaluated with mAP against the camera simulator's ground truth.
* ``safety/firearm_detection`` — the "criminal scene auto detection"
  flavour: the same detector plus a size/brightness heuristic flags
  suspicious objects, and frames can be privacy-masked before sharing
  (the High-Definition-Map masking use case the paper describes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps._batching import amortized_batch_latency, stack_if_homogeneous
from repro.core.openei import OpenEI
from repro.data.sensors import CameraSensor
from repro.exceptions import ConfigurationError
from repro.nn.metrics import mean_average_precision

Box = Tuple[float, float, float, float]


@dataclass
class Detection:
    """One detected object."""

    box: Box
    score: float


class BlobDetector:
    """A lightweight bright-blob detector for grayscale surveillance frames.

    Thresholding plus 4-connected flood fill — small enough to run on the
    weakest edge, and accurate on the synthetic camera feed, so the
    scenario exercises the full detect → score → mAP pipeline without a
    heavyweight CNN.
    """

    def __init__(self, threshold: float = 0.45, min_area: int = 6) -> None:
        if min_area <= 0:
            raise ConfigurationError("min_area must be positive")
        self.threshold = float(threshold)
        self.min_area = int(min_area)

    def detect(self, frame: np.ndarray) -> List[Detection]:
        """Return scored boxes for bright connected regions in one frame."""
        if frame.ndim == 3:
            frame = frame[:, :, 0]
        mask = frame > self.threshold
        visited = np.zeros_like(mask, dtype=bool)
        detections: List[Detection] = []
        height, width = mask.shape
        for y in range(height):
            for x in range(width):
                if not mask[y, x] or visited[y, x]:
                    continue
                stack = [(y, x)]
                visited[y, x] = True
                pixels = []
                while stack:
                    cy, cx = stack.pop()
                    pixels.append((cy, cx))
                    for ny, nx in ((cy - 1, cx), (cy + 1, cx), (cy, cx - 1), (cy, cx + 1)):
                        if 0 <= ny < height and 0 <= nx < width and mask[ny, nx] and not visited[ny, nx]:
                            visited[ny, nx] = True
                            stack.append((ny, nx))
                if len(pixels) < self.min_area:
                    continue
                ys = [p[0] for p in pixels]
                xs = [p[1] for p in pixels]
                score = float(np.clip(frame[ys, xs].mean(), 0.0, 1.0))
                detections.append(
                    Detection(box=(float(min(xs)), float(min(ys)), float(max(xs) + 1), float(max(ys) + 1)),
                              score=score)
                )
        return detections

    def detect_batch(self, frames: np.ndarray) -> List[List[Detection]]:
        """Detect in every frame of a batch."""
        return [self.detect(frame) for frame in frames]

    def evaluate(self, frames: np.ndarray, ground_truth: Sequence[Sequence[Box]],
                 iou_threshold: float = 0.5) -> float:
        """Mean average precision over a batch of frames."""
        detections = [
            [(d.box, d.score) for d in self.detect(frame)] for frame in frames
        ]
        return mean_average_precision(detections, ground_truth, iou_threshold=iou_threshold)


def mask_private_regions(frame: np.ndarray, boxes: Sequence[Box], fill: float = 0.0) -> np.ndarray:
    """Privacy masking: blank out the given regions before data leaves the edge."""
    masked = frame.copy()
    for x1, y1, x2, y2 in boxes:
        masked[int(y1) : int(y2), int(x1) : int(x2)] = fill
    return masked


def flag_suspicious(detections: Sequence[Detection], min_area: float = 30.0,
                    min_score: float = 0.6) -> List[Detection]:
    """Heuristic firearm/threat flagging: large, bright objects are escalated."""
    flagged = []
    for det in detections:
        x1, y1, x2, y2 = det.box
        area = (x2 - x1) * (y2 - y1)
        if area >= min_area and det.score >= min_score:
            flagged.append(det)
    return flagged


def register_public_safety(openei: OpenEI, camera_id: str = "camera1", seed: int = 0,
                           detector: Optional[BlobDetector] = None) -> BlobDetector:
    """Attach a camera sensor and register the safety algorithms on ``openei``."""
    detector = detector or BlobDetector()
    camera = CameraSensor(sensor_id=camera_id, seed=seed)
    openei.data_store.register_sensor(camera)

    def _detection_result(reading, detections, latency_s: float) -> Dict[str, object]:
        return {
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "detections": [{"box": list(d.box), "score": d.score} for d in detections],
            "ground_truth_boxes": reading.annotations.get("boxes", []),
            # per-request latency observation for the adaptive control
            # plane (wall clock scaled by the emulated device slowdown)
            "observed_alem": {"latency_s": latency_s},
        }

    def _firearm_result(reading, detections, latency_s: float) -> Dict[str, object]:
        flagged = flag_suspicious(detections)
        return {
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "alerts": [{"box": list(d.box), "score": d.score} for d in flagged],
            "alert": bool(flagged),
            "observed_alem": {"latency_s": latency_s},
        }

    def detection_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("video", camera_id)))
        detections = detector.detect(reading.payload)
        latency = (time.perf_counter() - start) * ei.runtime.slowdown
        return _detection_result(reading, detections, latency)

    def firearm_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("video", camera_id)))
        detections = detector.detect(reading.payload)
        latency = (time.perf_counter() - start) * ei.runtime.slowdown
        return _firearm_result(reading, detections, latency)

    def _batched(build_result):
        """A batch handler that stacks the micro-batch's frames into one detector call."""

        def batch_handler(ei: OpenEI, calls: List[Dict[str, object]]) -> List[Dict[str, object]]:
            start = time.perf_counter()
            readings = [
                ei.data_store.realtime(str(args.get("video", camera_id))) for args in calls
            ]
            frames = stack_if_homogeneous([reading.payload for reading in readings])
            if frames is not None:
                per_frame = detector.detect_batch(frames)
            else:
                per_frame = [detector.detect(reading.payload) for reading in readings]
            latency = amortized_batch_latency(start, ei, len(calls))
            return [
                build_result(reading, detections, latency)
                for reading, detections in zip(readings, per_frame)
            ]

        return batch_handler

    openei.register_algorithm(
        "safety", "detection", detection_handler, batch_handler=_batched(_detection_result)
    )
    openei.register_algorithm(
        "safety", "firearm_detection", firearm_handler, batch_handler=_batched(_firearm_result)
    )
    return detector
