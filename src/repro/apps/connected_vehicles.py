"""Connected and Autonomous Vehicles (Section V.B).

The exposed algorithm is ``vehicles/tracking``: detect the lead object in
each forward-camera frame and track it with a constant-velocity
alpha-beta filter (the classic lightweight tracker), producing smoothed
positions and a one-step-ahead prediction.  Tracking error against the
simulator's ground-truth trajectory is the scenario's accuracy metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps._batching import amortized_batch_latency, stack_if_homogeneous
from repro.core.openei import OpenEI
from repro.data.sensors import VehicleCameraSensor
from repro.exceptions import ConfigurationError


@dataclass
class TrackState:
    """Current estimate of the tracked object."""

    position: np.ndarray   # (2,)
    velocity: np.ndarray   # (2,)

    def predict(self, steps: int = 1) -> np.ndarray:
        """Constant-velocity prediction ``steps`` frames ahead."""
        return self.position + self.velocity * steps


class ObjectTracker:
    """Alpha-beta filter over per-frame bright-centroid measurements."""

    def __init__(self, alpha: float = 0.6, beta: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 <= beta <= 1.0:
            raise ConfigurationError("alpha must lie in (0, 1] and beta in [0, 1]")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.state: Optional[TrackState] = None

    @staticmethod
    def measure(frame: np.ndarray) -> np.ndarray:
        """Intensity-weighted centroid of the brightest region in a frame."""
        if frame.ndim == 3:
            frame = frame[:, :, 0]
        threshold = frame.mean() + 2 * frame.std()
        mask = frame > threshold
        if not mask.any():
            mask = frame >= np.quantile(frame, 0.999)
        ys, xs = np.nonzero(mask)
        weights = frame[ys, xs]
        total = weights.sum()
        return np.array([float((xs * weights).sum() / total), float((ys * weights).sum() / total)])

    @staticmethod
    def measure_batch(frames: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`measure` over a stack of frames.

        Per-frame thresholds, masks and weighted centroids are computed
        with whole-stack array operations — one pass for an entire
        micro-batch instead of one Python traversal per frame.  Returns
        the ``(n, 2)`` measured positions.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim == 4:
            frames = frames[:, :, :, 0]
        thresholds = frames.mean(axis=(1, 2)) + 2 * frames.std(axis=(1, 2))
        masks = frames > thresholds[:, None, None]
        empty = ~masks.any(axis=(1, 2))
        if empty.any():
            fallback = np.quantile(frames[empty], 0.999, axis=(1, 2))
            masks[empty] = frames[empty] >= fallback[:, None, None]
        weighted = frames * masks
        totals = weighted.sum(axis=(1, 2))
        xs = np.arange(frames.shape[2], dtype=np.float64)
        ys = np.arange(frames.shape[1], dtype=np.float64)
        cx = weighted.sum(axis=1) @ xs / totals
        cy = weighted.sum(axis=2) @ ys / totals
        return np.stack([cx, cy], axis=1)

    def update_with_measurement(self, measurement: np.ndarray) -> TrackState:
        """Fold one precomputed centroid measurement into the track."""
        if self.state is None:
            self.state = TrackState(position=measurement, velocity=np.zeros(2))
            return self.state
        predicted = self.state.position + self.state.velocity
        residual = measurement - predicted
        position = predicted + self.alpha * residual
        velocity = self.state.velocity + self.beta * residual
        self.state = TrackState(position=position, velocity=velocity)
        return self.state

    def update(self, frame: np.ndarray) -> TrackState:
        """Consume one frame and return the updated track state."""
        return self.update_with_measurement(self.measure(frame))

    def track(self, frames: np.ndarray) -> np.ndarray:
        """Track through a frame sequence; returns the (n, 2) estimated positions."""
        estimates = []
        for frame in frames:
            estimates.append(self.update(frame).position.copy())
        return np.array(estimates)

    def reset(self) -> None:
        """Forget the current track."""
        self.state = None

    @staticmethod
    def tracking_rmse(estimates: np.ndarray, ground_truth: np.ndarray) -> float:
        """Root-mean-square position error in pixels."""
        if estimates.shape != ground_truth.shape:
            raise ConfigurationError("estimates and ground_truth must have the same shape")
        return float(np.sqrt(np.mean(np.sum((estimates - ground_truth) ** 2, axis=1))))


def register_connected_vehicles(
    openei: OpenEI, camera_id: str = "vehiclecam1", seed: int = 0,
    tracker: Optional[ObjectTracker] = None,
) -> ObjectTracker:
    """Attach a vehicle camera and register the tracking algorithm on ``openei``."""
    tracker = tracker or ObjectTracker()
    camera = VehicleCameraSensor(sensor_id=camera_id, seed=seed)
    openei.data_store.register_sensor(camera)

    def _fold_track(readings, measurements) -> Dict[str, object]:
        """Fold per-frame measurements into the (stateful) track, in order.

        Returns the result payload without ``observed_alem``: latency is
        attached by the caller *after* folding, so the reported wall
        clock covers the state updates too.
        """
        positions: List[List[float]] = []
        truths: List[List[float]] = []
        for reading, measurement in zip(readings, measurements):
            state = tracker.update_with_measurement(measurement)
            positions.append([float(state.position[0]), float(state.position[1])])
            truths.append(list(reading.annotations["position"]))
        prediction = tracker.state.predict(1) if tracker.state is not None else np.zeros(2)
        return {
            "sensor_id": camera_id,
            "track": positions,
            "ground_truth": truths,
            "predicted_next": [float(prediction[0]), float(prediction[1])],
        }

    def tracking_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        frames = int(args.get("frames", 1))
        readings = ei.data_store.capture(str(args.get("video", camera_id)), count=max(1, frames))
        measurements = tracker.measure_batch(np.stack([r.payload for r in readings]))
        result = _fold_track(readings, measurements)
        # per-request latency observation for the adaptive control
        # plane (wall clock scaled by the emulated device slowdown)
        result["observed_alem"] = {
            "latency_s": (time.perf_counter() - start) * ei.runtime.slowdown
        }
        return result

    def tracking_batch_handler(
        ei: OpenEI, calls: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Measure every frame of the micro-batch in one vectorized pass.

        The alpha-beta filter itself is sequential (each update feeds the
        next), so per-request results are folded in arrival order — but
        the per-frame centroid extraction, the dominant cost, runs once
        over the stacked frames of *all* requests.
        """
        start = time.perf_counter()
        per_call_readings = [
            ei.data_store.capture(
                str(args.get("video", camera_id)), count=max(1, int(args.get("frames", 1)))
            )
            for args in calls
        ]
        flat_readings = [r for readings in per_call_readings for r in readings]
        stacked = stack_if_homogeneous([reading.payload for reading in flat_readings])
        if stacked is not None:
            all_measurements = tracker.measure_batch(stacked)
        else:
            # mixed camera sizes: frames are homogeneous within a call,
            # so vectorize per call instead of across the whole batch
            all_measurements = np.concatenate(
                [tracker.measure_batch(np.stack([r.payload for r in readings]))
                 for readings in per_call_readings]
            )
        results: List[Dict[str, object]] = []
        offset = 0
        for readings in per_call_readings:
            measurements = all_measurements[offset : offset + len(readings)]
            offset += len(readings)
            results.append(_fold_track(readings, measurements))
        latency = amortized_batch_latency(start, ei, len(calls))
        for result in results:
            result["observed_alem"] = {"latency_s": latency}
        return results

    openei.register_algorithm(
        "vehicles", "tracking", tracking_handler, batch_handler=tracking_batch_handler
    )
    return tracker
