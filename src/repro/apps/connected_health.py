"""Smart and Connected Health (Section V.D).

The exposed algorithm is ``health/activity_recognition``: classify
wearable-IMU windows into activities with a FastGRNN sequence model — the
"light-weight intelligent algorithms running on smart wearable devices"
direction the paper describes — keeping the health data on the edge.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.apps._batching import amortized_batch_latency, stack_if_homogeneous
from repro.core.openei import OpenEI
from repro.data.sensors import WearableIMUSensor
from repro.data.workloads import activity_recognition_workload
from repro.eialgorithms.fastgrnn import FastGRNNClassifier
from repro.exceptions import ConfigurationError


class ActivityRecognizer:
    """FastGRNN-based activity classifier for wearable IMU windows."""

    def __init__(
        self,
        steps: int = 20,
        channels: int = 6,
        hidden_size: int = 12,
        num_classes: int = len(WearableIMUSensor.ACTIVITIES),
        seed: int = 0,
    ) -> None:
        if steps <= 0 or channels <= 0:
            raise ConfigurationError("steps and channels must be positive")
        self.steps = int(steps)
        self.channels = int(channels)
        self.num_classes = int(num_classes)
        self.classifier = FastGRNNClassifier(
            input_size=channels, hidden_size=hidden_size, num_classes=num_classes, seed=seed
        )
        self.activity_names = WearableIMUSensor.ACTIVITIES
        self._trained = False

    def train(self, samples: int = 240, epochs: int = 8, seed: int = 0) -> float:
        """Train on a synthetic wearable workload; returns held-out accuracy."""
        workload = activity_recognition_workload(
            samples=samples, steps=self.steps, channels=self.channels, seed=seed
        )
        split = int(len(workload.windows) * 0.75)
        self.classifier.fit(
            workload.windows[:split], workload.labels[:split], epochs=epochs
        )
        self._trained = True
        return self.classifier.score(workload.windows[split:], workload.labels[split:])

    def recognize(self, window: np.ndarray) -> Dict[str, object]:
        """Classify one IMU window; returns the activity name and probabilities."""
        if window.ndim == 2:
            window = window[None, :, :]
        return self.recognize_batch(window)[0]

    def recognize_batch(self, windows: np.ndarray) -> List[Dict[str, object]]:
        """Classify a stack of IMU windows with one fused engine forward.

        ``windows`` is ``(n, steps, channels)``; the whole stack runs as a
        single :meth:`~repro.nn.model.Sequential.predict_batch` call, so a
        micro-batch of requests pays for one forward pass, not ``n``.
        """
        if not self._trained:
            raise ConfigurationError("train must be called before recognize")
        probs = self.classifier.model.predict_batch(windows)
        results: List[Dict[str, object]] = []
        for row in probs:
            activity = int(np.argmax(row))
            results.append(
                {
                    "activity": activity,
                    "activity_name": self.activity_names[activity],
                    "probabilities": {
                        name: float(p) for name, p in zip(self.activity_names, row)
                    },
                }
            )
        return results

    def score(self, windows: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on labelled windows."""
        return self.classifier.score(windows, labels)


def register_connected_health(
    openei: OpenEI, sensor_id: str = "wearable1", seed: int = 0,
    recognizer: Optional[ActivityRecognizer] = None,
    train_samples: int = 240, train_epochs: int = 10,
) -> ActivityRecognizer:
    """Attach a wearable sensor and register the health algorithm on ``openei``."""
    recognizer = recognizer or ActivityRecognizer(seed=seed)
    if not recognizer._trained:  # noqa: SLF001 - module-internal convenience
        recognizer.train(samples=train_samples, epochs=train_epochs, seed=seed)
    sensor = WearableIMUSensor(sensor_id=sensor_id, seed=seed)
    openei.data_store.register_sensor(sensor)

    def _finalize(result: Dict[str, object], reading, latency_s: float) -> Dict[str, object]:
        truth = reading.annotations["activity_name"]
        result.update(
            {
                "sensor_id": reading.sensor_id,
                "timestamp": reading.timestamp,
                "ground_truth": truth,
                # per-request ALEM observation for the adaptive control
                # plane: wall clock scaled by the runtime's emulated
                # slowdown; accuracy is per-window correctness
                "observed_alem": {
                    "latency_s": latency_s,
                    "accuracy": 1.0 if result["activity_name"] == truth else 0.0,
                },
            }
        )
        return result

    def activity_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("sensor", sensor_id)))
        result = recognizer.recognize(reading.payload)
        latency = (time.perf_counter() - start) * ei.runtime.slowdown
        return _finalize(result, reading, latency)

    def activity_batch_handler(
        ei: OpenEI, calls: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Stack the micro-batch's IMU windows into one fused engine forward."""
        start = time.perf_counter()
        readings = [
            ei.data_store.realtime(str(args.get("sensor", sensor_id))) for args in calls
        ]
        windows = stack_if_homogeneous([reading.payload for reading in readings])
        if windows is not None:
            results = recognizer.recognize_batch(windows)
        else:
            results = [recognizer.recognize(reading.payload) for reading in readings]
        latency = amortized_batch_latency(start, ei, len(calls))
        return [
            _finalize(result, reading, latency)
            for result, reading in zip(results, readings)
        ]

    openei.register_algorithm(
        "health", "activity_recognition", activity_handler,
        batch_handler=activity_batch_handler,
    )
    return recognizer
