"""Smart and Connected Health (Section V.D).

The exposed algorithm is ``health/activity_recognition``: classify
wearable-IMU windows into activities with a FastGRNN sequence model — the
"light-weight intelligent algorithms running on smart wearable devices"
direction the paper describes — keeping the health data on the edge.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.core.openei import OpenEI
from repro.data.sensors import WearableIMUSensor
from repro.data.workloads import activity_recognition_workload
from repro.eialgorithms.fastgrnn import FastGRNNClassifier
from repro.exceptions import ConfigurationError


class ActivityRecognizer:
    """FastGRNN-based activity classifier for wearable IMU windows."""

    def __init__(
        self,
        steps: int = 20,
        channels: int = 6,
        hidden_size: int = 12,
        num_classes: int = len(WearableIMUSensor.ACTIVITIES),
        seed: int = 0,
    ) -> None:
        if steps <= 0 or channels <= 0:
            raise ConfigurationError("steps and channels must be positive")
        self.steps = int(steps)
        self.channels = int(channels)
        self.num_classes = int(num_classes)
        self.classifier = FastGRNNClassifier(
            input_size=channels, hidden_size=hidden_size, num_classes=num_classes, seed=seed
        )
        self.activity_names = WearableIMUSensor.ACTIVITIES
        self._trained = False

    def train(self, samples: int = 240, epochs: int = 8, seed: int = 0) -> float:
        """Train on a synthetic wearable workload; returns held-out accuracy."""
        workload = activity_recognition_workload(
            samples=samples, steps=self.steps, channels=self.channels, seed=seed
        )
        split = int(len(workload.windows) * 0.75)
        self.classifier.fit(
            workload.windows[:split], workload.labels[:split], epochs=epochs
        )
        self._trained = True
        return self.classifier.score(workload.windows[split:], workload.labels[split:])

    def recognize(self, window: np.ndarray) -> Dict[str, object]:
        """Classify one IMU window; returns the activity name and probabilities."""
        if not self._trained:
            raise ConfigurationError("train must be called before recognize")
        if window.ndim == 2:
            window = window[None, :, :]
        probs = self.classifier.predict_proba(window)[0]
        activity = int(np.argmax(probs))
        return {
            "activity": activity,
            "activity_name": self.activity_names[activity],
            "probabilities": {
                name: float(p) for name, p in zip(self.activity_names, probs)
            },
        }

    def score(self, windows: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on labelled windows."""
        return self.classifier.score(windows, labels)


def register_connected_health(
    openei: OpenEI, sensor_id: str = "wearable1", seed: int = 0,
    recognizer: Optional[ActivityRecognizer] = None,
    train_samples: int = 240, train_epochs: int = 10,
) -> ActivityRecognizer:
    """Attach a wearable sensor and register the health algorithm on ``openei``."""
    recognizer = recognizer or ActivityRecognizer(seed=seed)
    if not recognizer._trained:  # noqa: SLF001 - module-internal convenience
        recognizer.train(samples=train_samples, epochs=train_epochs, seed=seed)
    sensor = WearableIMUSensor(sensor_id=sensor_id, seed=seed)
    openei.data_store.register_sensor(sensor)

    def activity_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("sensor", sensor_id)))
        result = recognizer.recognize(reading.payload)
        truth = reading.annotations["activity_name"]
        result.update(
            {
                "sensor_id": reading.sensor_id,
                "timestamp": reading.timestamp,
                "ground_truth": truth,
                # per-request ALEM observation for the adaptive control
                # plane: wall clock scaled by the runtime's emulated
                # slowdown; accuracy is per-window correctness
                "observed_alem": {
                    "latency_s": (time.perf_counter() - start) * ei.runtime.slowdown,
                    "accuracy": 1.0 if result["activity_name"] == truth else 0.0,
                },
            }
        )
        return result

    openei.register_algorithm("health", "activity_recognition", activity_handler)
    return recognizer
