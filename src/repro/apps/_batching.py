"""Shared micro-batch plumbing for the scenario apps' batch handlers.

Every app batch handler follows the same contract (see
``docs/API.md``, "App `batch_handler` contract"): gather one reading per
request, answer the whole micro-batch with one stacked call when the
inputs are shape-homogeneous, and report each request's *amortized*
share of the batch wall clock as its observed ALEM latency.  The two
subtle pieces of that contract live here so the four apps cannot drift
apart.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np


def amortized_batch_latency(start: float, ei, count: int) -> float:
    """Per-request share of a batch's wall clock, scaled by the emulated slowdown.

    ``start`` is the ``time.perf_counter()`` stamp taken when the batch
    handler began; the share is what each coalesced request actually
    paid, which is what the adaptive control plane should observe.
    """
    return (time.perf_counter() - start) * ei.runtime.slowdown / max(1, count)


def stack_if_homogeneous(payloads: Sequence[np.ndarray]) -> Optional[np.ndarray]:
    """``np.stack(payloads)`` when they share one shape, else ``None``.

    Batch handlers consume their sensor readings exactly once *before*
    stacking; a mixed-shape micro-batch (requests naming
    differently-sized sensors) must take the caller's per-reading path
    rather than raise — an exception here would make the dispatcher's
    error-isolation retry re-consume fresh readings, diverging from the
    unbatched path.
    """
    if len({payload.shape for payload in payloads}) == 1:
        return np.stack(payloads)
    return None
