"""Smart Homes (Section V.C).

The exposed algorithm is ``home/power_monitor``: non-intrusive load
monitoring of the whole-home power trace.  Given the aggregate wattage,
the monitor infers which appliances are on by finding the subset of known
appliance signatures that best explains the measurement (the IEHouse /
PowerAnalyzer use case the paper cites), entirely on the edge so no
consumption data leaves the home.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps._batching import amortized_batch_latency
from repro.core.openei import OpenEI
from repro.data.sensors import PowerMeterSensor
from repro.exceptions import ConfigurationError


class PowerMonitor:
    """Subset-matching non-intrusive load monitor.

    The 2^A on/off combinations and their signature sums are enumerated
    once at construction; both :meth:`infer_states` and
    :meth:`infer_batch` then resolve measurements with a vectorized
    nearest-sum lookup (sorted sums + ``searchsorted``) instead of
    re-enumerating every subset per sample.
    """

    def __init__(
        self,
        appliance_names: Sequence[str] = PowerMeterSensor.APPLIANCES,
        appliance_watts: Sequence[float] = PowerMeterSensor.APPLIANCE_WATTS,
        base_load_w: float = 80.0,
    ) -> None:
        if len(appliance_names) != len(appliance_watts):
            raise ConfigurationError("appliance_names and appliance_watts must align")
        if not appliance_names:
            raise ConfigurationError("at least one appliance signature is required")
        self.appliance_names = tuple(appliance_names)
        self.appliance_watts = np.asarray(appliance_watts, dtype=np.float64)
        self.base_load_w = float(base_load_w)
        self._build_combination_table()

    def _build_combination_table(self) -> None:
        """Precompute every appliance subset, its wattage sum and its tie rank.

        Combinations are ranked in the classic subset-matching search
        order — the empty set, then size-ascending lexicographic — so
        equal-error ties resolve exactly as the per-sample enumeration
        did (the first strictly-better candidate wins).  Duplicate sums
        keep only their lowest-ranked combination; the table is then
        sorted by sum so lookup is a ``searchsorted`` between the two
        neighbouring sums.
        """
        count = len(self.appliance_names)
        indices = range(count)
        ordered: List[Tuple[int, ...]] = [()]
        for size in range(1, count + 1):
            ordered.extend(combinations(indices, size))
        # map each distinct sum to the lowest-ranked combination producing it
        sum_to_rank: Dict[float, int] = {}
        sums = np.array([float(self.appliance_watts[list(c)].sum()) for c in ordered])
        for rank in range(len(ordered)):
            value = sums[rank]
            if value not in sum_to_rank:
                sum_to_rank[value] = rank
        unique_sums = np.array(sorted(sum_to_rank))
        ranks = np.array([sum_to_rank[value] for value in unique_sums])
        states = np.zeros((len(ordered), count), dtype=bool)
        for rank, combo in enumerate(ordered):
            states[rank, list(combo)] = True
        self._combo_sums = unique_sums          # (n_unique,) ascending
        self._combo_ranks = ranks               # enumeration rank per unique sum
        self._combo_states = states             # (2^A, A) on/off patterns by rank

    def _lookup(self, residuals: np.ndarray) -> np.ndarray:
        """Ranks of the best-matching combination for each residual wattage.

        For each residual the candidates are the two table sums bracketing
        it; exact error ties go to the lower enumeration rank, matching
        the strictly-improving scan of the original search.
        """
        sums = self._combo_sums
        upper = np.searchsorted(sums, residuals).clip(0, len(sums) - 1)
        lower = np.maximum(upper - 1, 0)
        error_lower = np.abs(residuals - sums[lower])
        error_upper = np.abs(residuals - sums[upper])
        rank_lower = self._combo_ranks[lower]
        rank_upper = self._combo_ranks[upper]
        prefer_lower = (error_lower < error_upper) | (
            (error_lower == error_upper) & (rank_lower < rank_upper)
        )
        return np.where(prefer_lower, rank_lower, rank_upper)

    def infer_states(self, total_watts: float) -> Tuple[bool, ...]:
        """Return the on/off combination whose sum best matches the measurement."""
        residual = np.asarray([float(total_watts) - self.base_load_w])
        rank = self._lookup(residual)[0]
        return tuple(bool(s) for s in self._combo_states[rank])

    def infer_batch(self, power_w: np.ndarray) -> np.ndarray:
        """Infer appliance states for a whole trace; returns (n, appliances) booleans.

        One vectorized nearest-sum lookup resolves the entire trace — no
        per-sample combination scan.
        """
        residuals = np.asarray(power_w, dtype=np.float64) - self.base_load_w
        return self._combo_states[self._lookup(residuals)]

    def accuracy(self, power_w: np.ndarray, true_states: np.ndarray) -> float:
        """Per-appliance state accuracy averaged over the trace."""
        predicted = self.infer_batch(power_w)
        if predicted.shape != true_states.shape:
            raise ConfigurationError("true_states shape does not match the trace")
        return float(np.mean(predicted == true_states))

    def estimated_energy_kwh(self, power_w: np.ndarray, period_s: float = 60.0) -> float:
        """Energy represented by the trace, for energy-saving reports."""
        return float(power_w.sum() * period_s / 3.6e6)


def register_smart_home(
    openei: OpenEI, meter_id: str = "powermeter1", seed: int = 0,
    monitor: Optional[PowerMonitor] = None,
) -> PowerMonitor:
    """Attach a power meter and register the power-monitoring algorithm on ``openei``."""
    monitor = monitor or PowerMonitor()
    meter = PowerMeterSensor(sensor_id=meter_id, seed=seed)
    openei.data_store.register_sensor(meter)

    def _result(reading, states, latency_s: float) -> Dict[str, object]:
        total = float(reading.payload[0])
        truth = tuple(bool(s) for s in reading.annotations["appliance_states"])
        return {
            # per-request ALEM observation for the adaptive control plane:
            # wall-clock compute scaled by the runtime's emulated slowdown,
            # plus per-appliance state accuracy against the ground truth
            "observed_alem": {
                "latency_s": latency_s,
                "accuracy": float(np.mean([p == t for p, t in zip(states, truth)])),
            },
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "total_watts": total,
            "appliances": {
                name: bool(state) for name, state in zip(monitor.appliance_names, states)
            },
            "ground_truth": {
                name: bool(state)
                for name, state in zip(
                    monitor.appliance_names, reading.annotations["appliance_states"]
                )
            },
        }

    def power_monitor_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("meter", meter_id)))
        states = monitor.infer_states(float(reading.payload[0]))
        latency = (time.perf_counter() - start) * ei.runtime.slowdown
        return _result(reading, states, latency)

    def power_monitor_batch_handler(
        ei: OpenEI, calls: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Resolve a whole micro-batch with one vectorized nearest-sum lookup."""
        start = time.perf_counter()
        readings = [
            ei.data_store.realtime(str(args.get("meter", meter_id))) for args in calls
        ]
        totals = np.array([float(reading.payload[0]) for reading in readings])
        batch_states = monitor.infer_batch(totals)
        latency = amortized_batch_latency(start, ei, len(calls))
        return [
            _result(reading, tuple(bool(s) for s in states), latency)
            for reading, states in zip(readings, batch_states)
        ]

    openei.register_algorithm(
        "home", "power_monitor", power_monitor_handler,
        batch_handler=power_monitor_batch_handler,
    )
    return monitor
