"""Smart Homes (Section V.C).

The exposed algorithm is ``home/power_monitor``: non-intrusive load
monitoring of the whole-home power trace.  Given the aggregate wattage,
the monitor infers which appliances are on by finding the subset of known
appliance signatures that best explains the measurement (the IEHouse /
PowerAnalyzer use case the paper cites), entirely on the edge so no
consumption data leaves the home.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.openei import OpenEI
from repro.data.sensors import PowerMeterSensor
from repro.exceptions import ConfigurationError


class PowerMonitor:
    """Subset-matching non-intrusive load monitor."""

    def __init__(
        self,
        appliance_names: Sequence[str] = PowerMeterSensor.APPLIANCES,
        appliance_watts: Sequence[float] = PowerMeterSensor.APPLIANCE_WATTS,
        base_load_w: float = 80.0,
    ) -> None:
        if len(appliance_names) != len(appliance_watts):
            raise ConfigurationError("appliance_names and appliance_watts must align")
        if not appliance_names:
            raise ConfigurationError("at least one appliance signature is required")
        self.appliance_names = tuple(appliance_names)
        self.appliance_watts = np.asarray(appliance_watts, dtype=np.float64)
        self.base_load_w = float(base_load_w)

    def infer_states(self, total_watts: float) -> Tuple[bool, ...]:
        """Return the on/off combination whose sum best matches the measurement."""
        residual = total_watts - self.base_load_w
        best_combo: Tuple[int, ...] = ()
        best_error = abs(residual)
        indices = range(len(self.appliance_names))
        for size in range(1, len(self.appliance_names) + 1):
            for combo in combinations(indices, size):
                error = abs(residual - self.appliance_watts[list(combo)].sum())
                if error < best_error:
                    best_error = error
                    best_combo = combo
        states = [False] * len(self.appliance_names)
        for index in best_combo:
            states[index] = True
        return tuple(states)

    def infer_batch(self, power_w: np.ndarray) -> np.ndarray:
        """Infer appliance states for a whole trace; returns (n, appliances) booleans."""
        return np.array([self.infer_states(float(w)) for w in power_w], dtype=bool)

    def accuracy(self, power_w: np.ndarray, true_states: np.ndarray) -> float:
        """Per-appliance state accuracy averaged over the trace."""
        predicted = self.infer_batch(power_w)
        if predicted.shape != true_states.shape:
            raise ConfigurationError("true_states shape does not match the trace")
        return float(np.mean(predicted == true_states))

    def estimated_energy_kwh(self, power_w: np.ndarray, period_s: float = 60.0) -> float:
        """Energy represented by the trace, for energy-saving reports."""
        return float(power_w.sum() * period_s / 3.6e6)


def register_smart_home(
    openei: OpenEI, meter_id: str = "powermeter1", seed: int = 0,
    monitor: Optional[PowerMonitor] = None,
) -> PowerMonitor:
    """Attach a power meter and register the power-monitoring algorithm on ``openei``."""
    monitor = monitor or PowerMonitor()
    meter = PowerMeterSensor(sensor_id=meter_id, seed=seed)
    openei.data_store.register_sensor(meter)

    def power_monitor_handler(ei: OpenEI, args: Dict[str, object]) -> Dict[str, object]:
        start = time.perf_counter()
        reading = ei.data_store.realtime(str(args.get("meter", meter_id)))
        total = float(reading.payload[0])
        states = monitor.infer_states(total)
        truth = tuple(bool(s) for s in reading.annotations["appliance_states"])
        return {
            # per-request ALEM observation for the adaptive control plane:
            # wall-clock compute scaled by the runtime's emulated slowdown,
            # plus per-appliance state accuracy against the ground truth
            "observed_alem": {
                "latency_s": (time.perf_counter() - start) * ei.runtime.slowdown,
                "accuracy": float(np.mean([p == t for p, t in zip(states, truth)])),
            },
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "total_watts": total,
            "appliances": {
                name: bool(state) for name, state in zip(monitor.appliance_names, states)
            },
            "ground_truth": {
                name: bool(state)
                for name, state in zip(
                    monitor.appliance_names, reading.annotations["appliance_states"]
                )
            },
        }

    openei.register_algorithm("home", "power_monitor", power_monitor_handler)
    return monitor
