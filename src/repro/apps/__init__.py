"""The four application scenarios of Section V, built on the public OpenEI API.

Each module provides a domain pipeline plus a ``register(openei, ...)``
helper that exposes the pipeline through libei under the URL prefix
Fig. 4 names for it:

* :mod:`repro.apps.public_safety`    — ``/ei_algorithms/safety/detection`` and
  ``/ei_algorithms/safety/firearm_detection``
* :mod:`repro.apps.connected_vehicles` — ``/ei_algorithms/vehicles/tracking``
* :mod:`repro.apps.smart_home`       — ``/ei_algorithms/home/power_monitor``
* :mod:`repro.apps.connected_health` — ``/ei_algorithms/health/activity_recognition``
"""

from repro.apps.connected_health import ActivityRecognizer, register_connected_health
from repro.apps.connected_vehicles import ObjectTracker, register_connected_vehicles
from repro.apps.public_safety import BlobDetector, register_public_safety
from repro.apps.smart_home import PowerMonitor, register_smart_home

__all__ = [
    "ActivityRecognizer",
    "BlobDetector",
    "ObjectTracker",
    "PowerMonitor",
    "register_connected_health",
    "register_connected_vehicles",
    "register_public_safety",
    "register_smart_home",
]


def register_all(openei, seed: int = 0) -> None:
    """Register every scenario's algorithms on a deployed OpenEI instance."""
    register_public_safety(openei, seed=seed)
    register_connected_vehicles(openei, seed=seed)
    register_smart_home(openei, seed=seed)
    register_connected_health(openei, seed=seed)
