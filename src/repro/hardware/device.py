"""Edge device and network-link specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DeviceSpec:
    """Analytical description of one edge (or cloud) device.

    Attributes
    ----------
    name:
        Human-readable device name (e.g. ``"raspberry-pi-4"``).
    peak_gflops:
        Peak sustainable compute throughput in GFLOP/s for dense
        arithmetic.  Drives the compute roof of the latency model.
    memory_bandwidth_gbps:
        Main-memory bandwidth in GB/s.  Drives the memory roof.
    memory_mb:
        Usable RAM in MiB; models that do not fit are rejected.
    idle_power_w / active_power_w:
        Board power draw when idle and when running inference flat out;
        the energy model integrates the difference over the inference time.
    storage_mb:
        Local storage available for model files and cached sensor data.
    is_cloud:
        Marks datacenter-class hardware (dataflow 1 of Fig. 3 offloads here).
    tags:
        Free-form labels the model selector can filter on (e.g. ``"gpu"``).
    """

    name: str
    peak_gflops: float
    memory_bandwidth_gbps: float
    memory_mb: float
    idle_power_w: float
    active_power_w: float
    storage_mb: float = 8192.0
    is_cloud: bool = False
    tags: tuple = ()

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.memory_bandwidth_gbps <= 0:
            raise ConfigurationError("device throughput figures must be positive")
        if self.memory_mb <= 0 or self.storage_mb <= 0:
            raise ConfigurationError("device memory and storage must be positive")
        if self.active_power_w < self.idle_power_w or self.idle_power_w < 0:
            raise ConfigurationError("active power must be >= idle power >= 0")

    @property
    def dynamic_power_w(self) -> float:
        """Additional power drawn when computing (the paper's Energy attribute)."""
        return self.active_power_w - self.idle_power_w

    def describe(self) -> Dict[str, object]:
        """Plain-dict summary used by libei's device resource endpoint."""
        return {
            "name": self.name,
            "peak_gflops": self.peak_gflops,
            "memory_bandwidth_gbps": self.memory_bandwidth_gbps,
            "memory_mb": self.memory_mb,
            "idle_power_w": self.idle_power_w,
            "active_power_w": self.active_power_w,
            "storage_mb": self.storage_mb,
            "is_cloud": self.is_cloud,
            "tags": list(self.tags),
        }


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point network link between two devices (edge-cloud or edge-edge).

    Used by the collaboration layer to charge transfer latency and by the
    Fig. 1 / Fig. 3 benchmarks to compare offloading against on-edge
    execution.
    """

    name: str
    bandwidth_mbps: float
    latency_ms: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0 or self.latency_ms < 0:
            raise ConfigurationError("link bandwidth must be positive and latency non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must lie in [0, 1)")

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Time to move ``payload_bytes`` across the link, including retransmissions."""
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")
        effective_bandwidth = self.bandwidth_mbps * (1.0 - self.loss_rate)
        transfer = payload_bytes * 8.0 / (effective_bandwidth * 1e6)
        return self.latency_ms / 1000.0 + transfer


#: Common link presets used by examples and benchmarks.
WAN_LINK = NetworkLink(name="edge-to-cloud-wan", bandwidth_mbps=20.0, latency_ms=60.0)
LAN_LINK = NetworkLink(name="edge-to-edge-lan", bandwidth_mbps=200.0, latency_ms=2.0)
CELLULAR_LINK = NetworkLink(name="edge-to-cloud-lte", bandwidth_mbps=8.0, latency_ms=90.0, loss_rate=0.02)
