"""Energy model: the E of the ALEM tuple.

The paper defines Energy as *the increased power consumption of the
hardware when executing the inference task*, i.e. dynamic power
integrated over inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.hardware.device import DeviceSpec


@dataclass(frozen=True)
class EnergyModel:
    """Convert inference latency into joules of extra energy drawn.

    ``utilization`` scales the dynamic power range: memory-bound models do
    not drive the device to its full active power.
    """

    utilization: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must lie in (0, 1]")

    def inference_joules(self, latency_seconds: float, device: DeviceSpec) -> float:
        """Dynamic energy for one inference of the given latency."""
        if latency_seconds < 0:
            raise ConfigurationError("latency_seconds must be non-negative")
        return latency_seconds * device.dynamic_power_w * self.utilization

    def idle_joules(self, seconds: float, device: DeviceSpec) -> float:
        """Baseline energy drawn while idle for ``seconds``."""
        if seconds < 0:
            raise ConfigurationError("seconds must be non-negative")
        return seconds * device.idle_power_w

    def battery_lifetime_hours(
        self, device: DeviceSpec, battery_wh: float, inferences_per_hour: float, latency_seconds: float
    ) -> float:
        """Hours a battery lasts under a periodic inference workload."""
        if battery_wh <= 0 or inferences_per_hour < 0:
            raise ConfigurationError("battery_wh must be positive and rate non-negative")
        hourly_joules = (
            self.idle_joules(3600.0, device)
            + inferences_per_hour * self.inference_joules(latency_seconds, device)
        )
        return battery_wh * 3600.0 / hourly_joules
