"""Edge hardware substrate: analytical device models and the ALEM profiler.

The paper's model selector reasons over heterogeneous edge hardware
(Raspberry Pi, Jetson TX2, mobile phones, edge servers, Arduino-class
MCUs).  Since physical boards are unavailable, each device is described
analytically — peak compute throughput, memory bandwidth, RAM and power
draw — and a roofline-style performance model converts a model's static
cost profile into the Latency, Energy and Memory-footprint entries of the
ALEM tuple.  Relative orderings between devices and between models match
the published characteristics the selector depends on.
"""

from repro.hardware.catalog import (
    DEVICE_CATALOG,
    arduino_class_mcu,
    edge_server,
    get_device,
    jetson_tx2,
    list_devices,
    mobile_phone,
    raspberry_pi_3,
    raspberry_pi_4,
)
from repro.hardware.device import DeviceSpec, NetworkLink
from repro.hardware.energy import EnergyModel
from repro.hardware.latency import LatencyModel
from repro.hardware.memory import MemoryModel
from repro.hardware.profiler import (
    PACKAGE_CONFIGURATIONS,
    ALEMProfiler,
    ProfileResult,
    make_profiler,
)

__all__ = [
    "ALEMProfiler",
    "PACKAGE_CONFIGURATIONS",
    "make_profiler",
    "DEVICE_CATALOG",
    "DeviceSpec",
    "EnergyModel",
    "LatencyModel",
    "MemoryModel",
    "NetworkLink",
    "ProfileResult",
    "arduino_class_mcu",
    "edge_server",
    "get_device",
    "jetson_tx2",
    "list_devices",
    "mobile_phone",
    "raspberry_pi_3",
    "raspberry_pi_4",
]
