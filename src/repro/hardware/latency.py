"""Roofline-style latency model.

Latency of running a model on a device is the larger of its compute time
(FLOPs / effective throughput) and its memory time (bytes moved /
bandwidth), plus a fixed dispatch overhead.  A *package efficiency*
factor models how well the deployed deep-learning package exploits the
hardware — the lever the paper's package manager optimizations pull.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.hardware.device import DeviceSpec
from repro.nn.flops import ModelCost


@dataclass(frozen=True)
class LatencyModel:
    """Analytical single-inference latency estimator.

    Parameters
    ----------
    dispatch_overhead_s:
        Fixed per-inference overhead (interpreter dispatch, memory
        allocation).  Lightweight edge packages reduce this.
    flops_per_mac:
        FLOPs charged per multiply-accumulate (2 for multiply + add).
    """

    dispatch_overhead_s: float = 0.002
    flops_per_mac: float = 2.0

    def __post_init__(self) -> None:
        if self.dispatch_overhead_s < 0 or self.flops_per_mac <= 0:
            raise ConfigurationError("latency model parameters must be positive")

    def inference_seconds(
        self,
        cost: ModelCost,
        device: DeviceSpec,
        package_efficiency: float = 0.35,
        batch_size: int = 1,
    ) -> float:
        """Estimated wall-clock seconds for one batch of inference.

        ``package_efficiency`` in (0, 1] scales the device's peak
        throughput down to what the deployed package actually achieves.
        """
        if not 0.0 < package_efficiency <= 1.0:
            raise ConfigurationError("package_efficiency must lie in (0, 1]")
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        flops = cost.flops * self.flops_per_mac * batch_size
        compute_time = flops / (device.peak_gflops * 1e9 * package_efficiency)
        bytes_moved = (cost.size_bytes + cost.activation_bytes * batch_size)
        memory_time = bytes_moved / (device.memory_bandwidth_gbps * 1e9)
        return self.dispatch_overhead_s + max(compute_time, memory_time)

    def training_seconds(
        self,
        cost: ModelCost,
        device: DeviceSpec,
        samples: int,
        epochs: int = 1,
        package_efficiency: float = 0.35,
        backward_multiplier: float = 3.0,
    ) -> float:
        """Estimated time to (re)train on ``samples`` examples for ``epochs`` epochs.

        A backward+update pass costs roughly ``backward_multiplier`` times
        the forward pass, the standard rule of thumb the local-training
        path of the package manager uses.
        """
        if samples <= 0 or epochs <= 0:
            raise ConfigurationError("samples and epochs must be positive")
        per_sample = self.inference_seconds(cost, device, package_efficiency) - self.dispatch_overhead_s
        return self.dispatch_overhead_s + per_sample * backward_multiplier * samples * epochs
