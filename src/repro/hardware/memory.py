"""Memory-footprint model: the M of the ALEM tuple."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.hardware.device import DeviceSpec
from repro.nn.flops import ModelCost


@dataclass(frozen=True)
class MemoryModel:
    """Estimate resident memory when running a model.

    The footprint is the model's weights plus peak activations plus the
    package's own runtime overhead (interpreter, kernels, buffers) —
    the quantity the paper's Memory-footprint attribute measures.
    """

    runtime_overhead_mb: float = 24.0
    activation_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.runtime_overhead_mb < 0 or self.activation_multiplier <= 0:
            raise ConfigurationError("memory model parameters must be non-negative/positive")

    def footprint_mb(self, cost: ModelCost, batch_size: int = 1) -> float:
        """Resident megabytes while executing inference."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        weights_mb = cost.size_bytes / (1024.0**2)
        activations_mb = cost.activation_bytes * batch_size * self.activation_multiplier / (1024.0**2)
        return self.runtime_overhead_mb + weights_mb + activations_mb

    def fits(self, cost: ModelCost, device: DeviceSpec, batch_size: int = 1) -> bool:
        """True when the model's footprint fits the device's RAM."""
        return self.footprint_mb(cost, batch_size) <= device.memory_mb
