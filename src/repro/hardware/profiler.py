"""ALEM profiler: measure a (model, package-configuration, device) point.

The profiler produces the Latency, Energy and Memory-footprint entries of
the paper's ALEM tuple from the analytical models in this package;
Accuracy is task-specific and is attached by
:mod:`repro.core.capability`, which evaluates the model on held-out data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.device import DeviceSpec
from repro.hardware.energy import EnergyModel
from repro.hardware.latency import LatencyModel
from repro.hardware.memory import MemoryModel
from repro.nn.flops import ModelCost, model_cost
from repro.nn.model import Sequential


@dataclass(frozen=True)
class ProfileResult:
    """The hardware-dependent part of an ALEM measurement."""

    model_name: str
    device_name: str
    package_name: str
    latency_s: float
    energy_j: float
    memory_mb: float
    fits_in_memory: bool
    cost: ModelCost

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by libei and the benchmark harnesses."""
        return {
            "model": self.model_name,
            "device": self.device_name,
            "package": self.package_name,
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "memory_mb": self.memory_mb,
            "fits_in_memory": self.fits_in_memory,
            "params": self.cost.params,
            "flops": self.cost.flops,
            "size_mb": self.cost.size_mb,
        }


class ALEMProfiler:
    """Profile models against devices under a named package configuration.

    ``package_efficiency`` and ``dispatch_overhead_s`` describe the
    deployed deep-learning package; the OpenEI package manager registers
    one profiler per package configuration it supports (eager, fused,
    quantized, ...), which is how the pCAMP-style comparison (bench S2)
    is realized.
    """

    def __init__(
        self,
        package_name: str = "openei-lite",
        package_efficiency: float = 0.35,
        dispatch_overhead_s: float = 0.002,
        runtime_overhead_mb: float = 24.0,
        latency_model: Optional[LatencyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        memory_model: Optional[MemoryModel] = None,
    ) -> None:
        if not 0.0 < package_efficiency <= 1.0:
            raise ConfigurationError("package_efficiency must lie in (0, 1]")
        self.package_name = package_name
        self.package_efficiency = float(package_efficiency)
        self.latency_model = latency_model or LatencyModel(dispatch_overhead_s=dispatch_overhead_s)
        self.energy_model = energy_model or EnergyModel()
        self.memory_model = memory_model or MemoryModel(runtime_overhead_mb=runtime_overhead_mb)

    def profile(
        self,
        model: Sequential,
        input_shape: Tuple[int, ...],
        device: DeviceSpec,
        batch_size: int = 1,
        bytes_per_param: float = 4.0,
        measure: bool = False,
    ) -> ProfileResult:
        """Profile one (model, device) point under this package configuration.

        With ``measure=False`` (the default) latency comes from the
        analytical roofline model, keeping selection deterministic and
        board-independent.  With ``measure=True`` the latency entry is
        instead *measured* through the compiled inference engine — the
        exact fused, workspace-reusing path the serving layer executes —
        so the ALEM profile reflects what requests actually pay on this
        host (plus the package's dispatch overhead).  The energy entry
        always derives from the *analytical* latency: host wall clock
        times the target device's power draw would describe neither
        machine, so only the latency axis is host-relative in a
        measured profile.
        """
        cost = model_cost(model, input_shape, bytes_per_param=bytes_per_param)
        analytical_latency = self.latency_model.inference_seconds(
            cost, device, package_efficiency=self.package_efficiency, batch_size=batch_size
        )
        if measure:
            latency = self.latency_model.dispatch_overhead_s + self.measure_latency(
                model, input_shape, batch_size=batch_size
            )
        else:
            latency = analytical_latency
        energy = self.energy_model.inference_joules(analytical_latency, device)
        memory = self.memory_model.footprint_mb(cost, batch_size=batch_size)
        return ProfileResult(
            model_name=model.name,
            device_name=device.name,
            package_name=self.package_name,
            latency_s=latency,
            energy_j=energy,
            memory_mb=memory,
            fits_in_memory=self.memory_model.fits(cost, device, batch_size=batch_size),
            cost=cost,
        )

    @staticmethod
    def measure_latency(
        model: Sequential,
        input_shape: Tuple[int, ...],
        batch_size: int = 1,
        repeats: int = 3,
        warmup: int = 1,
    ) -> float:
        """Wall-clock seconds per forward pass through the compiled engine.

        Runs the model's cached :class:`~repro.nn.engine.InferencePlan`
        (compiling it on first use) over a deterministic input batch and
        returns the best of ``repeats`` timings, so ALEM profiles and the
        adaptive control plane observe the same fused code path the
        serving layer dispatches to.
        """
        if batch_size <= 0 or repeats <= 0:
            raise ConfigurationError("batch_size and repeats must be positive")
        rng = np.random.default_rng(0)
        inputs = rng.standard_normal((batch_size, *input_shape))
        plan = model.compile_plan()
        for _ in range(max(0, warmup)):
            plan.execute(inputs)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            plan.execute(inputs)
            best = min(best, time.perf_counter() - start)
        return best

    def profile_training(
        self,
        model: Sequential,
        input_shape: Tuple[int, ...],
        device: DeviceSpec,
        samples: int,
        epochs: int = 1,
        bytes_per_param: float = 4.0,
    ) -> float:
        """Estimated seconds to locally (re)train ``model`` on the device."""
        cost = model_cost(model, input_shape, bytes_per_param=bytes_per_param)
        return self.latency_model.training_seconds(
            cost,
            device,
            samples=samples,
            epochs=epochs,
            package_efficiency=self.package_efficiency,
        )


#: Package configurations used across examples and benchmarks.  The
#: "cloud-framework" entry models a heavyweight framework deployed on the
#: edge unchanged; "openei-lite" the paper's edge-optimized package; the
#: fused/quantized variants trade runtime memory for speed (pre-fused
#: kernels, int8 code paths) — the "packages sacrifice memory to reduce
#: latency" observation of Section IV.B, which is why no configuration
#: wins every ALEM dimension (bench S2).
PACKAGE_CONFIGURATIONS: Dict[str, Dict[str, float]] = {
    "cloud-framework": {
        "package_efficiency": 0.18, "dispatch_overhead_s": 0.020, "runtime_overhead_mb": 220.0,
    },
    "openei-lite": {
        "package_efficiency": 0.35, "dispatch_overhead_s": 0.002, "runtime_overhead_mb": 18.0,
    },
    "openei-lite-fused": {
        "package_efficiency": 0.50, "dispatch_overhead_s": 0.001, "runtime_overhead_mb": 42.0,
    },
    "openei-lite-quantized": {
        "package_efficiency": 0.60, "dispatch_overhead_s": 0.001, "runtime_overhead_mb": 30.0,
    },
}


def make_profiler(package_name: str) -> ALEMProfiler:
    """Build a profiler for one of the named package configurations."""
    try:
        config = PACKAGE_CONFIGURATIONS[package_name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown package configuration {package_name!r}; "
            f"choose from {sorted(PACKAGE_CONFIGURATIONS)}"
        ) from exc
    return ALEMProfiler(package_name=package_name, **config)
