"""Catalog of edge devices named in the paper.

Numbers are order-of-magnitude figures from public datasheets; the
reproduction only relies on their *relative* ordering (MCU ≪ Pi ≪ phone ≪
Jetson ≪ edge server ≪ cloud), which is what the model selector and the
Fig. 5 grid experiment exercise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import ConfigurationError
from repro.hardware.device import DeviceSpec


def arduino_class_mcu() -> DeviceSpec:
    """An Arduino-UNO-class microcontroller (the ProtoNN/Bonsai target)."""
    return DeviceSpec(
        name="arduino-class-mcu",
        peak_gflops=0.001,
        memory_bandwidth_gbps=0.01,
        memory_mb=0.002,  # 2 kB of SRAM, as in the paper's ProtoNN reference
        idle_power_w=0.05,
        active_power_w=0.25,
        storage_mb=0.032,
        tags=("mcu", "battery"),
    )


def raspberry_pi_3() -> DeviceSpec:
    """Raspberry Pi 3B: the paper's canonical 'weak edge'."""
    return DeviceSpec(
        name="raspberry-pi-3",
        peak_gflops=6.0,
        memory_bandwidth_gbps=2.0,
        memory_mb=1024.0,
        idle_power_w=1.4,
        active_power_w=3.7,
        storage_mb=16384.0,
        tags=("sbc",),
    )


def raspberry_pi_4() -> DeviceSpec:
    """Raspberry Pi 4 (4 GB)."""
    return DeviceSpec(
        name="raspberry-pi-4",
        peak_gflops=13.5,
        memory_bandwidth_gbps=4.0,
        memory_mb=4096.0,
        idle_power_w=2.7,
        active_power_w=6.4,
        storage_mb=32768.0,
        tags=("sbc",),
    )


def mobile_phone() -> DeviceSpec:
    """A mid-range smartphone SoC (CPU-only inference)."""
    return DeviceSpec(
        name="mobile-phone",
        peak_gflops=40.0,
        memory_bandwidth_gbps=15.0,
        memory_mb=6144.0,
        idle_power_w=0.8,
        active_power_w=4.5,
        storage_mb=65536.0,
        tags=("mobile", "battery"),
    )


def intel_movidius() -> DeviceSpec:
    """Intel Movidius-style USB vision accelerator."""
    return DeviceSpec(
        name="intel-movidius",
        peak_gflops=100.0,
        memory_bandwidth_gbps=8.0,
        memory_mb=512.0,
        idle_power_w=0.5,
        active_power_w=2.5,
        storage_mb=512.0,
        tags=("accelerator", "vision"),
    )


def jetson_tx2() -> DeviceSpec:
    """NVIDIA Jetson TX2: the paper's GPU-equipped edge board."""
    return DeviceSpec(
        name="jetson-tx2",
        peak_gflops=650.0,
        memory_bandwidth_gbps=58.0,
        memory_mb=8192.0,
        idle_power_w=5.0,
        active_power_w=15.0,
        storage_mb=32768.0,
        tags=("gpu", "sbc"),
    )


def jetson_agx_xavier() -> DeviceSpec:
    """NVIDIA Jetson AGX Xavier (Section IV.D of the paper)."""
    return DeviceSpec(
        name="jetson-agx-xavier",
        peak_gflops=5500.0,
        memory_bandwidth_gbps=137.0,
        memory_mb=16384.0,
        idle_power_w=10.0,
        active_power_w=30.0,
        storage_mb=32768.0,
        tags=("gpu", "sbc"),
    )


def edge_server() -> DeviceSpec:
    """A small on-premise edge server with a workstation GPU."""
    return DeviceSpec(
        name="edge-server",
        peak_gflops=12000.0,
        memory_bandwidth_gbps=448.0,
        memory_mb=65536.0,
        idle_power_w=80.0,
        active_power_w=350.0,
        storage_mb=1048576.0,
        tags=("gpu", "server"),
    )


def cloud_datacenter() -> DeviceSpec:
    """Datacenter-class accelerator pool used by the cloud simulator."""
    return DeviceSpec(
        name="cloud-datacenter",
        peak_gflops=120000.0,
        memory_bandwidth_gbps=2000.0,
        memory_mb=524288.0,
        idle_power_w=500.0,
        active_power_w=3000.0,
        storage_mb=10485760.0,
        is_cloud=True,
        tags=("gpu", "cloud"),
    )


_FACTORIES = {
    "arduino-class-mcu": arduino_class_mcu,
    "raspberry-pi-3": raspberry_pi_3,
    "raspberry-pi-4": raspberry_pi_4,
    "mobile-phone": mobile_phone,
    "intel-movidius": intel_movidius,
    "jetson-tx2": jetson_tx2,
    "jetson-agx-xavier": jetson_agx_xavier,
    "edge-server": edge_server,
    "cloud-datacenter": cloud_datacenter,
}

#: Mapping of device name to spec, materialized once at import time.
DEVICE_CATALOG: Dict[str, DeviceSpec] = {name: factory() for name, factory in _FACTORIES.items()}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name.

    Raises
    ------
    ConfigurationError
        If the device is not in the catalog.
    """
    try:
        return DEVICE_CATALOG[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown device {name!r}; choose from {sorted(DEVICE_CATALOG)}"
        ) from exc


def list_devices(edge_only: bool = False) -> List[DeviceSpec]:
    """All catalog devices, optionally excluding cloud-class hardware."""
    devices = list(DEVICE_CATALOG.values())
    if edge_only:
        devices = [d for d in devices if not d.is_cloud]
    return devices
