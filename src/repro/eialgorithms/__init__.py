"""EI algorithms: models designed for resource-constrained edges.

Section IV.A.2 of the paper surveys two families:

* compact CNNs built from depthwise-separable convolutions and squeeze
  modules (MobileNet, SqueezeNet, Xception) — implemented as builders
  returning :class:`~repro.nn.model.Sequential` networks at configurable
  scale (:mod:`repro.eialgorithms.mobilenet`,
  :mod:`repro.eialgorithms.squeezenet`, plus the heavyweight reference
  architectures in :mod:`repro.eialgorithms.reference`);
* Microsoft Research India's tiny-footprint learners for IoT devices —
  Bonsai (:mod:`repro.eialgorithms.bonsai`), ProtoNN
  (:mod:`repro.eialgorithms.protonn`), FastGRNN
  (:mod:`repro.eialgorithms.fastgrnn`) and EMI-RNN
  (:mod:`repro.eialgorithms.emirnn`).
"""

from repro.eialgorithms.bonsai import BonsaiClassifier
from repro.eialgorithms.emirnn import EMIRNNClassifier
from repro.eialgorithms.fastgrnn import FastGRNNClassifier
from repro.eialgorithms.mobilenet import build_mobilenet
from repro.eialgorithms.protonn import ProtoNNClassifier
from repro.eialgorithms.reference import build_alexnet_lite, build_lenet, build_mlp, build_vgg_lite
from repro.eialgorithms.squeezenet import build_squeezenet

__all__ = [
    "BonsaiClassifier",
    "EMIRNNClassifier",
    "FastGRNNClassifier",
    "ProtoNNClassifier",
    "build_alexnet_lite",
    "build_lenet",
    "build_mlp",
    "build_mobilenet",
    "build_squeezenet",
    "build_vgg_lite",
]
