"""Bonsai: a tree-based learner for tiny IoT devices (Kumar et al. 2017).

Bonsai's three ingredients are (1) a low-dimensional learned projection
of the input, (2) a *single shallow tree* whose internal nodes route
points with linear splits in the projected space, and (3) linear
predictors at every node whose outputs are summed along the root-to-leaf
path.  This reimplementation keeps all three at architecture level:

* the projection is a fixed sparse random matrix (Bonsai learns it
  jointly; a random projection preserves the memory footprint and the
  routing structure, which is what the EI-capability experiments use);
* routing hyperplanes are chosen greedily to balance class purity;
* node predictors are small softmax regressors trained on the samples
  routed through each node, and path outputs are averaged.

The result is a classifier whose model size is a few kilobytes —
matching the "2 kB RAM Arduino" deployment target the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


@dataclass
class _Node:
    """One tree node: a routing hyperplane and a linear predictor."""

    theta: Optional[np.ndarray]  # routing weights; None for leaves
    weights: np.ndarray          # (projection_dim, classes) predictor
    bias: np.ndarray             # (classes,)


class BonsaiClassifier:
    """Shallow-tree classifier with node predictors in a projected space."""

    def __init__(
        self,
        projection_dim: int = 8,
        depth: int = 2,
        learning_rate: float = 0.1,
        epochs: int = 30,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if projection_dim <= 0 or depth < 0:
            raise ConfigurationError("projection_dim must be positive and depth non-negative")
        if epochs <= 0 or learning_rate <= 0:
            raise ConfigurationError("epochs and learning_rate must be positive")
        self.projection_dim = int(projection_dim)
        self.depth = int(depth)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self._rng = np.random.default_rng(seed)
        self.projection: Optional[np.ndarray] = None
        self.nodes: List[_Node] = []
        self.num_classes = 0
        self.name = f"bonsai-d{depth}-p{projection_dim}"

    # -- internals ------------------------------------------------------
    def _project(self, x: np.ndarray) -> np.ndarray:
        if self.projection is None:
            raise RuntimeError("fit must be called before projecting")
        return x @ self.projection

    def _route_mask(self, z: np.ndarray, node_index: int) -> np.ndarray:
        """Boolean mask of samples that pass through node ``node_index``."""
        mask = np.ones(len(z), dtype=bool)
        path = []
        index = node_index
        while index > 0:
            parent = (index - 1) // 2
            path.append((parent, index == 2 * parent + 1))
            index = parent
        for parent, went_left in reversed(path):
            theta = self.nodes[parent].theta
            if theta is None:
                continue
            scores = z @ theta
            mask &= (scores <= 0) if went_left else (scores > 0)
        return mask

    def _train_predictor(self, node: _Node, z: np.ndarray, y: np.ndarray) -> None:
        """Softmax-regression training of one node predictor."""
        if len(z) == 0:
            return
        onehot = np.zeros((len(y), self.num_classes))
        onehot[np.arange(len(y)), y] = 1.0
        for _ in range(self.epochs):
            logits = z @ node.weights + node.bias
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            grad = (probs - onehot) / len(z)
            node.weights -= self.learning_rate * (z.T @ grad + self.l2 * node.weights)
            node.bias -= self.learning_rate * grad.sum(axis=0)

    def _choose_split(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pick the routing hyperplane that best separates the two largest classes."""
        classes, counts = np.unique(y, return_counts=True)
        if len(classes) < 2:
            return self._rng.normal(size=self.projection_dim)
        order = np.argsort(-counts)
        first, second = classes[order[0]], classes[order[1]]
        direction = z[y == first].mean(axis=0) - z[y == second].mean(axis=0)
        norm = np.linalg.norm(direction)
        return direction / norm if norm > 0 else self._rng.normal(size=self.projection_dim)

    # -- public API -----------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "BonsaiClassifier":
        """Fit the tree on ``(samples, features)`` data with integer labels."""
        if x.ndim != 2:
            raise ShapeError("BonsaiClassifier expects 2-D inputs")
        y = y.astype(int)
        self.num_classes = int(y.max()) + 1
        features = x.shape[1]
        # Sparse random projection: roughly a third of entries are non-zero.
        dense = self._rng.normal(0, 1.0 / np.sqrt(self.projection_dim), size=(features, self.projection_dim))
        mask = self._rng.random(dense.shape) < (1.0 / 3.0)
        self.projection = dense * mask * np.sqrt(3.0)
        z = self._project(x)

        node_count = 2 ** (self.depth + 1) - 1
        self.nodes = [
            _Node(
                theta=None,
                weights=np.zeros((self.projection_dim, self.num_classes)),
                bias=np.zeros(self.num_classes),
            )
            for _ in range(node_count)
        ]
        internal = 2**self.depth - 1
        for index in range(node_count):
            mask = self._route_mask(z, index)
            if index < internal:
                self.nodes[index].theta = self._choose_split(z[mask], y[mask]) if mask.any() else (
                    self._rng.normal(size=self.projection_dim)
                )
            self._train_predictor(self.nodes[index], z[mask], y[mask])
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Average softmax output along each sample's root-to-leaf path."""
        if self.projection is None:
            raise RuntimeError("fit must be called before predict")
        z = self._project(x)
        totals = np.zeros((len(x), self.num_classes))
        counts = np.zeros(len(x))
        for index, node in enumerate(self.nodes):
            mask = self._route_mask(z, index)
            if not mask.any():
                continue
            logits = z[mask] @ node.weights + node.bias
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            totals[mask] += probs
            counts[mask] += 1
        counts = np.maximum(counts, 1)
        return totals / counts[:, None]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return predicted class indices."""
        return self.predict_proba(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(x) == y.astype(int)))

    def param_count(self) -> int:
        """Scalar parameters: projection + per-node predictors and routing vectors."""
        if self.projection is None:
            return 0
        total = self.projection.size
        for node in self.nodes:
            total += node.weights.size + node.bias.size
            if node.theta is not None:
                total += node.theta.size
        return int(total)

    def size_bytes(self, bytes_per_param: float = 4.0) -> float:
        """Serialized size in bytes."""
        return self.param_count() * bytes_per_param
