"""MobileNet-style compact CNN (Howard et al., the paper's flagship EI algorithm).

The architecture is a stack of depthwise-separable convolution blocks
with the two hyper-parameters Google introduced: a **width multiplier**
that thins every layer and a **resolution multiplier** the caller applies
by shrinking the input.  Both let "the model builder choose the right
sized model for the specific application", exactly the selection space
the OpenEI model selector explores.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    ReLU,
    SeparableConv2D,
    Softmax,
)
from repro.nn.model import Sequential


def build_mobilenet(
    input_shape: Tuple[int, int, int] = (16, 16, 1),
    num_classes: int = 4,
    width_multiplier: float = 1.0,
    block_channels: Sequence[int] = (16, 32, 64),
    use_batchnorm: bool = True,
    seed: Optional[int] = 0,
    name: Optional[str] = None,
) -> Sequential:
    """Build a MobileNet-style classifier.

    Parameters
    ----------
    width_multiplier:
        The MobileNet alpha: every channel count is scaled by this factor.
    block_channels:
        Output channels of each depthwise-separable block before scaling.
    """
    if len(input_shape) != 3:
        raise ConfigurationError("input_shape must be (height, width, channels)")
    if width_multiplier <= 0:
        raise ConfigurationError("width_multiplier must be positive")
    if num_classes <= 1:
        raise ConfigurationError("num_classes must be at least 2")

    def scaled(channels: int) -> int:
        return max(1, int(round(channels * width_multiplier)))

    _, _, in_channels = input_shape
    model = Sequential(name=name or f"mobilenet-{width_multiplier:g}x")
    first = scaled(block_channels[0])
    model.add(Conv2D(in_channels, first, kernel_size=3, stride=1, seed=seed))
    if use_batchnorm:
        model.add(BatchNorm(first))
    model.add(ReLU())
    previous = first
    for idx, channels in enumerate(block_channels[1:], start=1):
        out = scaled(channels)
        stride = 2 if idx % 2 == 0 else 1
        model.add(
            SeparableConv2D(
                previous,
                out,
                kernel_size=3,
                stride=stride,
                seed=None if seed is None else seed + idx,
            )
        )
        if use_batchnorm:
            model.add(BatchNorm(out))
        model.add(ReLU())
        previous = out
    model.add(GlobalAvgPool2D())
    model.add(Dense(previous, num_classes, seed=None if seed is None else seed + 100))
    model.add(Softmax())
    model.metadata["family"] = "mobilenet"
    model.metadata["width_multiplier"] = width_multiplier
    return model
