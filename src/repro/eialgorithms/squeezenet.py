"""SqueezeNet-style compact CNN (Iandola et al.).

SqueezeNet reaches AlexNet-level accuracy with ~50x fewer parameters by
replacing most 3x3 convolutions with "fire" modules: a narrow 1x1
*squeeze* layer feeding a wider *expand* layer.  The Sequential engine
has no branching, so the expand stage uses a single 3x3 convolution of
the combined width, which keeps the parameter-count scaling (the property
the selection and compression experiments rely on) while staying faithful
to the squeeze-expand bottleneck structure.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import Conv2D, Dense, GlobalAvgPool2D, MaxPool2D, ReLU, Softmax
from repro.nn.model import Sequential


def _fire_module(model: Sequential, in_channels: int, squeeze: int, expand: int, seed: Optional[int]) -> int:
    """Append a squeeze (1x1) + expand (3x3) pair; return the output width."""
    model.add(Conv2D(in_channels, squeeze, kernel_size=1, padding="valid", seed=seed))
    model.add(ReLU())
    model.add(Conv2D(squeeze, expand, kernel_size=3, seed=None if seed is None else seed + 1))
    model.add(ReLU())
    return expand


def build_squeezenet(
    input_shape: Tuple[int, int, int] = (16, 16, 1),
    num_classes: int = 4,
    fire_modules: Sequence[Tuple[int, int]] = ((8, 16), (8, 24), (12, 32)),
    seed: Optional[int] = 0,
    name: str = "squeezenet",
) -> Sequential:
    """Build a SqueezeNet-style classifier from (squeeze, expand) module widths."""
    if len(input_shape) != 3:
        raise ConfigurationError("input_shape must be (height, width, channels)")
    if num_classes <= 1:
        raise ConfigurationError("num_classes must be at least 2")
    if not fire_modules:
        raise ConfigurationError("at least one fire module is required")
    _, _, in_channels = input_shape
    model = Sequential(name=name)
    model.add(Conv2D(in_channels, 8, kernel_size=3, seed=seed))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    previous = 8
    for idx, (squeeze, expand) in enumerate(fire_modules):
        previous = _fire_module(
            model, previous, squeeze, expand, None if seed is None else seed + 10 * (idx + 1)
        )
    model.add(GlobalAvgPool2D())
    model.add(Dense(previous, num_classes, seed=None if seed is None else seed + 100))
    model.add(Softmax())
    model.metadata["family"] = "squeezenet"
    return model
