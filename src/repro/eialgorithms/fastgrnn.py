"""FastGRNN: a fast, accurate and tiny gated RNN (Kusupati et al. 2018).

FastGRNN's key trick relative to a GRU/LSTM is weight reuse: a *single*
pair of input/hidden matrices (W, U) is shared between the gate and the
candidate state, and the gate is blended with two scalar trainable
parameters zeta and nu:

    z_t     = sigmoid(W x_t + U h_{t-1} + b_z)
    h_tilde = tanh   (W x_t + U h_{t-1} + b_h)
    h_t     = (zeta * (1 - z_t) + nu) * h_tilde + z_t * h_{t-1}

This cuts the recurrent parameter count roughly 3-4x versus a GRU, the
property the EMI-RNN/FastGRNN comparison in the paper leans on.  The
classifier below stacks the cell over a sequence and adds a softmax head,
trained end-to-end with backpropagation through time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import initializers
from repro.nn.layers import Dense, Softmax
from repro.nn.layers.base import ParametricLayer
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.serialization import register_layer


@register_layer
class FastGRNNLayer(ParametricLayer):
    """The FastGRNN recurrent cell applied over a full sequence."""

    kind = "recurrent"

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        zeta_init: float = 1.0,
        nu_init: float = 0.0,
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(name=name, seed=seed)
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigurationError("FastGRNNLayer requires positive input_size and hidden_size")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.zeta_init = float(zeta_init)
        self.nu_init = float(nu_init)
        init = initializers.get("glorot_uniform")
        self._params["W"] = init((self.input_size, self.hidden_size), self._rng)
        self._params["U"] = init((self.hidden_size, self.hidden_size), self._rng)
        self._params["b_z"] = initializers.zeros((self.hidden_size,), self._rng)
        self._params["b_h"] = initializers.zeros((self.hidden_size,), self._rng)
        self._params["zeta"] = np.array([zeta_init])
        self._params["nu"] = np.array([nu_init])
        self.zero_grads()
        self._cache = None

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_ndim(inputs, 3, "FastGRNNLayer")
        batch, steps, _ = inputs.shape
        hidden = np.zeros((batch, self.hidden_size))
        # gate caches exist only for backprop; inference must not hold
        # O(steps) per-timestep arrays it never reads
        caches = [] if training else None
        zeta = self._params["zeta"][0]
        nu = self._params["nu"][0]
        for t in range(steps):
            x_t = inputs[:, t, :]
            pre = x_t @ self._params["W"] + hidden @ self._params["U"]
            z = self._sigmoid(pre + self._params["b_z"])
            h_tilde = np.tanh(pre + self._params["b_h"])
            new_hidden = (zeta * (1.0 - z) + nu) * h_tilde + z * hidden
            if caches is not None:
                caches.append((x_t, hidden, z, h_tilde))
            hidden = new_hidden
        if training:
            self._cache = (inputs.shape, caches)
        return hidden

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        input_shape, caches = self._cache
        grad_inputs = np.zeros(input_shape)
        for key in self._params:
            self._grads[key] = np.zeros_like(self._params[key])
        zeta = self._params["zeta"][0]
        nu = self._params["nu"][0]
        grad_h = grad_output
        for t in reversed(range(len(caches))):
            x_t, h_prev, z, h_tilde = caches[t]
            gate_scale = zeta * (1.0 - z) + nu
            grad_h_tilde = grad_h * gate_scale
            grad_z = grad_h * (-zeta * h_tilde + h_prev)
            grad_h_prev = grad_h * z

            self._grads["zeta"][0] += float(np.sum(grad_h * (1.0 - z) * h_tilde))
            self._grads["nu"][0] += float(np.sum(grad_h * h_tilde))

            grad_pre_h = grad_h_tilde * (1.0 - h_tilde**2)
            grad_pre_z = grad_z * z * (1.0 - z)
            grad_pre = grad_pre_h + grad_pre_z

            self._grads["W"] += x_t.T @ grad_pre
            self._grads["U"] += h_prev.T @ grad_pre
            self._grads["b_z"] += grad_pre_z.sum(axis=0)
            self._grads["b_h"] += grad_pre_h.sum(axis=0)

            grad_inputs[:, t, :] = grad_pre @ self._params["W"].T
            grad_h = grad_h_prev + grad_pre @ self._params["U"].T
        return grad_inputs

    def get_config(self) -> Dict[str, object]:
        return {
            **super().get_config(),
            "input_size": self.input_size,
            "hidden_size": self.hidden_size,
            "zeta_init": self.zeta_init,
            "nu_init": self.nu_init,
        }

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        steps, _ = input_shape
        per_step = self.input_size * self.hidden_size + self.hidden_size * self.hidden_size
        return int(steps * per_step)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        del input_shape
        return (self.hidden_size,)


class FastGRNNClassifier:
    """Sequence classifier: FastGRNN cell + softmax head."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 16,
        num_classes: int = 2,
        seed: int = 0,
    ) -> None:
        if num_classes <= 1:
            raise ConfigurationError("num_classes must be at least 2")
        self.model = Sequential(
            [
                FastGRNNLayer(input_size, hidden_size, seed=seed),
                Dense(hidden_size, num_classes, seed=seed + 1),
                Softmax(),
            ],
            name=f"fastgrnn-h{hidden_size}",
        )
        self.name = self.model.name

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 15, batch_size: int = 32,
            learning_rate: float = 0.01) -> "FastGRNNClassifier":
        """Train on ``(samples, steps, features)`` sequences with integer labels."""
        self.model.fit(
            x, y, epochs=epochs, batch_size=batch_size,
            loss=CrossEntropyLoss(), optimizer=Adam(learning_rate),
        )
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for each sequence."""
        return self.model.predict(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return self.model.predict_classes(x)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        return self.model.evaluate(x, y)[1]

    def param_count(self) -> int:
        """Total trainable scalars."""
        return self.model.param_count()

    def size_bytes(self, bytes_per_param: float = 4.0) -> float:
        """Serialized size in bytes."""
        return self.model.size_bytes(bytes_per_param)
