"""ProtoNN: compressed, accurate kNN for resource-scarce devices (Gupta et al. 2017).

ProtoNN replaces the full training set of a k-nearest-neighbour
classifier with a small set of learned prototypes in a learned
low-dimensional projection, scoring a point by an RBF-kernel-weighted sum
of prototype label vectors.  This reimplementation keeps the full
prediction rule and learns the prototypes by class-wise k-means in the
projected space followed by gradient refinement of the prototype label
matrix — preserving the kilobyte-scale footprint the paper cites
("an Arduino UNO with 2 kB RAM").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


class ProtoNNClassifier:
    """Prototype-based nearest-neighbour classifier in a projected space."""

    def __init__(
        self,
        projection_dim: int = 8,
        prototypes_per_class: int = 3,
        gamma: Optional[float] = None,
        refine_epochs: int = 20,
        learning_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        if projection_dim <= 0 or prototypes_per_class <= 0:
            raise ConfigurationError("projection_dim and prototypes_per_class must be positive")
        if refine_epochs < 0 or learning_rate <= 0:
            raise ConfigurationError("refine_epochs must be >= 0 and learning_rate positive")
        self.projection_dim = int(projection_dim)
        self.prototypes_per_class = int(prototypes_per_class)
        self.gamma = gamma
        self.refine_epochs = int(refine_epochs)
        self.learning_rate = float(learning_rate)
        self._rng = np.random.default_rng(seed)
        self.projection: Optional[np.ndarray] = None
        self.prototypes: Optional[np.ndarray] = None
        self.prototype_labels: Optional[np.ndarray] = None
        self.num_classes = 0
        self.name = f"protonn-p{projection_dim}-m{prototypes_per_class}"

    def _kmeans(self, points: np.ndarray, clusters: int, iterations: int = 15) -> np.ndarray:
        """Plain Lloyd's k-means returning centroids."""
        if len(points) <= clusters:
            return points.copy()
        idx = self._rng.choice(len(points), size=clusters, replace=False)
        centroids = points[idx].copy()
        for _ in range(iterations):
            distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignment = distances.argmin(axis=1)
            for cluster in range(clusters):
                members = points[assignment == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        return centroids

    def _similarities(self, z: np.ndarray) -> np.ndarray:
        """RBF kernel similarities between projected points and prototypes."""
        assert self.prototypes is not None
        distances = ((z[:, None, :] - self.prototypes[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-self.gamma * distances)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ProtoNNClassifier":
        """Fit projection, prototypes and prototype label vectors."""
        if x.ndim != 2:
            raise ShapeError("ProtoNNClassifier expects 2-D inputs")
        y = y.astype(int)
        self.num_classes = int(y.max()) + 1
        features = x.shape[1]
        self.projection = self._rng.normal(
            0, 1.0 / np.sqrt(self.projection_dim), size=(features, self.projection_dim)
        )
        z = x @ self.projection

        prototypes = []
        labels = []
        for cls in range(self.num_classes):
            class_points = z[y == cls]
            if len(class_points) == 0:
                continue
            centroids = self._kmeans(class_points, self.prototypes_per_class)
            prototypes.append(centroids)
            onehot = np.zeros((len(centroids), self.num_classes))
            onehot[:, cls] = 1.0
            labels.append(onehot)
        self.prototypes = np.concatenate(prototypes)
        self.prototype_labels = np.concatenate(labels)

        if self.gamma is None:
            median_dist = float(np.median(((z[:, None, :] - self.prototypes[None, :, :]) ** 2).sum(axis=2)))
            self.gamma = 1.0 / max(median_dist, 1e-9)

        # Gradient refinement of the prototype label matrix on squared loss.
        onehot_y = np.zeros((len(y), self.num_classes))
        onehot_y[np.arange(len(y)), y] = 1.0
        for _ in range(self.refine_epochs):
            similarities = self._similarities(z)
            denom = similarities.sum(axis=1, keepdims=True) + 1e-12
            weights = similarities / denom
            predictions = weights @ self.prototype_labels
            grad = weights.T @ (predictions - onehot_y) / len(z)
            self.prototype_labels -= self.learning_rate * grad
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Similarity-weighted average of prototype label vectors, renormalized."""
        if self.projection is None or self.prototypes is None or self.prototype_labels is None:
            raise RuntimeError("fit must be called before predict")
        z = x @ self.projection
        similarities = self._similarities(z)
        denom = similarities.sum(axis=1, keepdims=True) + 1e-12
        scores = (similarities / denom) @ self.prototype_labels
        scores = np.clip(scores, 1e-9, None)
        return scores / scores.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return predicted class indices."""
        return self.predict_proba(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(x) == y.astype(int)))

    def param_count(self) -> int:
        """Projection + prototypes + prototype labels."""
        if self.projection is None or self.prototypes is None or self.prototype_labels is None:
            return 0
        return int(self.projection.size + self.prototypes.size + self.prototype_labels.size)

    def size_bytes(self, bytes_per_param: float = 4.0) -> float:
        """Serialized size in bytes."""
        return self.param_count() * bytes_per_param
