"""Reference (non-edge-optimized) architectures.

These play the role of AlexNet / VGG in the paper: accurate but heavy
baselines whose footprint motivates compression and the edge-native
architectures.  They are scaled down to laptop-size inputs while keeping
the characteristic depth/width ratios, so relative cost orderings
(VGG ≫ AlexNet ≫ LeNet ≫ MobileNet) are preserved.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.model import Sequential


def _validate_image_shape(input_shape: Tuple[int, int, int], min_size: int) -> None:
    if len(input_shape) != 3:
        raise ConfigurationError("image input_shape must be (height, width, channels)")
    if input_shape[0] < min_size or input_shape[1] < min_size:
        raise ConfigurationError(f"input spatial size must be at least {min_size}")


def build_mlp(
    input_features: int,
    num_classes: int,
    hidden: Tuple[int, ...] = (128, 64),
    dropout: float = 0.0,
    seed: Optional[int] = 0,
    name: str = "mlp",
) -> Sequential:
    """A plain multi-layer perceptron for tabular and flattened inputs."""
    if input_features <= 0 or num_classes <= 1:
        raise ConfigurationError("build_mlp requires positive features and >= 2 classes")
    model = Sequential(name=name)
    previous = input_features
    for idx, width in enumerate(hidden):
        model.add(Dense(previous, width, seed=None if seed is None else seed + idx))
        model.add(ReLU())
        if dropout > 0:
            model.add(Dropout(dropout, seed=seed))
        previous = width
    model.add(Dense(previous, num_classes, seed=None if seed is None else seed + 100))
    model.add(Softmax())
    model.metadata["family"] = "mlp"
    return model


def build_lenet(
    input_shape: Tuple[int, int, int] = (16, 16, 1),
    num_classes: int = 4,
    seed: Optional[int] = 0,
    name: str = "lenet",
) -> Sequential:
    """LeNet-style small CNN: two conv blocks plus a dense head."""
    _validate_image_shape(input_shape, 8)
    _, _, channels = input_shape
    model = Sequential(name=name)
    model.add(Conv2D(channels, 6, kernel_size=3, seed=seed))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(6, 16, kernel_size=3, seed=None if seed is None else seed + 1))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Flatten())
    flat = (input_shape[0] // 4) * (input_shape[1] // 4) * 16
    model.add(Dense(flat, 64, seed=None if seed is None else seed + 2))
    model.add(ReLU())
    model.add(Dense(64, num_classes, seed=None if seed is None else seed + 3))
    model.add(Softmax())
    model.metadata["family"] = "lenet"
    return model


def build_alexnet_lite(
    input_shape: Tuple[int, int, int] = (16, 16, 1),
    num_classes: int = 4,
    width_multiplier: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "alexnet-lite",
) -> Sequential:
    """AlexNet-shaped network: wide conv features and large dense head."""
    _validate_image_shape(input_shape, 8)
    if width_multiplier <= 0:
        raise ConfigurationError("width_multiplier must be positive")
    _, _, channels = input_shape
    def w(width: int) -> int:
        return max(1, int(round(width * width_multiplier)))

    model = Sequential(name=name)
    model.add(Conv2D(channels, w(24), kernel_size=3, seed=seed))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(w(24), w(48), kernel_size=3, seed=None if seed is None else seed + 1))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(w(48), w(64), kernel_size=3, seed=None if seed is None else seed + 2))
    model.add(ReLU())
    model.add(Flatten())
    flat = (input_shape[0] // 4) * (input_shape[1] // 4) * w(64)
    model.add(Dense(flat, w(256), seed=None if seed is None else seed + 3))
    model.add(ReLU())
    model.add(Dropout(0.3, seed=seed))
    model.add(Dense(w(256), num_classes, seed=None if seed is None else seed + 4))
    model.add(Softmax())
    model.metadata["family"] = "alexnet"
    return model


def build_vgg_lite(
    input_shape: Tuple[int, int, int] = (16, 16, 1),
    num_classes: int = 4,
    width_multiplier: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "vgg-lite",
) -> Sequential:
    """VGG-shaped network: stacked 3x3 convolutions and a heavy dense head.

    This is the reproduction's stand-in for the 500 MB VGG-16 the paper
    uses to illustrate why heavyweight models do not fit the edge.
    """
    _validate_image_shape(input_shape, 16)
    if width_multiplier <= 0:
        raise ConfigurationError("width_multiplier must be positive")
    _, _, channels = input_shape

    def w(width: int) -> int:
        return max(1, int(round(width * width_multiplier)))

    model = Sequential(name=name)
    model.add(Conv2D(channels, w(32), kernel_size=3, seed=seed))
    model.add(ReLU())
    model.add(Conv2D(w(32), w(32), kernel_size=3, seed=None if seed is None else seed + 1))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(w(32), w(64), kernel_size=3, seed=None if seed is None else seed + 2))
    model.add(ReLU())
    model.add(Conv2D(w(64), w(64), kernel_size=3, seed=None if seed is None else seed + 3))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(w(64), w(128), kernel_size=3, seed=None if seed is None else seed + 4))
    model.add(ReLU())
    model.add(Conv2D(w(128), w(128), kernel_size=3, seed=None if seed is None else seed + 5))
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Flatten())
    flat = (input_shape[0] // 8) * (input_shape[1] // 8) * w(128)
    model.add(Dense(flat, w(512), seed=None if seed is None else seed + 6))
    model.add(ReLU())
    model.add(Dropout(0.3, seed=seed))
    model.add(Dense(w(512), w(256), seed=None if seed is None else seed + 7))
    model.add(ReLU())
    model.add(Dense(w(256), num_classes, seed=None if seed is None else seed + 8))
    model.add(Softmax())
    model.metadata["family"] = "vgg"
    return model
