"""EMI-RNN: multiple-instance learning for efficient sequence classification
(Dennis et al. 2018).

EMI-RNN exploits the observation that the class signature of a long
sensor sequence is concentrated in a short sub-window.  Training slices
each sequence into overlapping windows that inherit the sequence label;
inference runs the recurrent model window by window and **stops early**
once a window is classified with sufficient confidence.  The paper cites
a ~72x computation reduction versus running an LSTM over the full
sequence; this reimplementation reproduces the mechanism (windowed
training + confidence-based early exit) and reports the achieved
computation saving so the benchmark can check the shape of that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import Dense, Softmax
from repro.nn.layers.recurrent import SimpleRNN
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam


@dataclass
class EMIInferenceStats:
    """Bookkeeping from an early-exit inference pass."""

    windows_total: int
    windows_evaluated: int

    @property
    def computation_saving(self) -> float:
        """Fraction of window evaluations skipped thanks to early exit."""
        if self.windows_total == 0:
            return 0.0
        return 1.0 - self.windows_evaluated / self.windows_total


class EMIRNNClassifier:
    """Windowed RNN classifier with confidence-based early exit."""

    def __init__(
        self,
        input_size: int,
        num_classes: int,
        window: int = 8,
        stride: int = 4,
        hidden_size: int = 16,
        confidence_threshold: float = 0.8,
        seed: int = 0,
    ) -> None:
        if window <= 0 or stride <= 0:
            raise ConfigurationError("window and stride must be positive")
        if not 0.0 < confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must lie in (0, 1]")
        if num_classes <= 1:
            raise ConfigurationError("num_classes must be at least 2")
        self.window = int(window)
        self.stride = int(stride)
        self.confidence_threshold = float(confidence_threshold)
        self.num_classes = int(num_classes)
        self.model = Sequential(
            [
                SimpleRNN(input_size, hidden_size, seed=seed),
                Dense(hidden_size, num_classes, seed=seed + 1),
                Softmax(),
            ],
            name=f"emi-rnn-w{window}",
        )
        self.name = self.model.name
        self.last_stats: Optional[EMIInferenceStats] = None

    # -- windowing -------------------------------------------------------
    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Slice ``(batch, steps, features)`` into ``(batch, n_windows, window, features)``."""
        if x.ndim != 3:
            raise ShapeError("EMIRNNClassifier expects (batch, steps, features) inputs")
        batch, steps, features = x.shape
        if steps < self.window:
            raise ShapeError(f"sequences of length {steps} are shorter than window {self.window}")
        starts = list(range(0, steps - self.window + 1, self.stride))
        stacked = np.stack([x[:, s : s + self.window, :] for s in starts], axis=1)
        return stacked

    # -- training --------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 10, batch_size: int = 64,
            learning_rate: float = 0.01) -> "EMIRNNClassifier":
        """Train the window model; each window inherits its sequence's label."""
        windows = self._windows(x)
        batch, n_windows, window, features = windows.shape
        flat_x = windows.reshape(batch * n_windows, window, features)
        flat_y = np.repeat(y.astype(int), n_windows)
        self.model.fit(
            flat_x, flat_y, epochs=epochs, batch_size=batch_size,
            loss=CrossEntropyLoss(), optimizer=Adam(learning_rate),
        )
        return self

    # -- inference -------------------------------------------------------
    def predict_proba(self, x: np.ndarray, early_exit: bool = True) -> np.ndarray:
        """Aggregate per-window probabilities with optional early exit.

        With early exit enabled, windows are evaluated in order and a
        sequence stops as soon as one window's top probability passes the
        confidence threshold — the source of EMI-RNN's computation saving.
        """
        windows = self._windows(x)
        batch, n_windows, _, _ = windows.shape
        evaluated = 0
        output = np.zeros((batch, self.num_classes))
        if not early_exit:
            for w in range(n_windows):
                output += self.model.predict(windows[:, w])
            self.last_stats = EMIInferenceStats(batch * n_windows, batch * n_windows)
            return output / n_windows
        done = np.zeros(batch, dtype=bool)
        accumulated = np.zeros((batch, self.num_classes))
        window_counts = np.zeros(batch)
        for w in range(n_windows):
            active = ~done
            if not active.any():
                break
            probs = self.model.predict(windows[active, w])
            evaluated += int(active.sum())
            accumulated[active] += probs
            window_counts[active] += 1
            confident = probs.max(axis=1) >= self.confidence_threshold
            active_indices = np.flatnonzero(active)
            done[active_indices[confident]] = True
        window_counts = np.maximum(window_counts, 1)
        output = accumulated / window_counts[:, None]
        self.last_stats = EMIInferenceStats(batch * n_windows, evaluated)
        return output

    def predict(self, x: np.ndarray, early_exit: bool = True) -> np.ndarray:
        """Predicted class indices."""
        return self.predict_proba(x, early_exit=early_exit).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray, early_exit: bool = True) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(x, early_exit=early_exit) == y.astype(int)))

    def param_count(self) -> int:
        """Total trainable scalars."""
        return self.model.param_count()

    def size_bytes(self, bytes_per_param: float = 4.0) -> float:
        """Serialized size in bytes."""
        return self.model.size_bytes(bytes_per_param)

    def computation_per_sequence(self) -> Tuple[int, int]:
        """(window evaluations with early exit, without) from the last inference."""
        if self.last_stats is None:
            return (0, 0)
        return (self.last_stats.windows_evaluated, self.last_stats.windows_total)
