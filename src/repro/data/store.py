"""Realtime/historical data store behind libei's ``/ei_data`` URLs."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.exceptions import ResourceNotFoundError
from repro.data.sensors import SensorReading, _BaseSensor


class EdgeDataStore:
    """Per-edge storage of sensor readings with realtime and historical access.

    * ``realtime(sensor_id)`` returns the newest reading (pulling a fresh
      one from a registered live sensor when available) — the
      ``/ei_data/realtime/<sensor>/{timestamp}`` call of Fig. 6.
    * ``historical(sensor_id, start, end)`` returns the readings recorded
      in a time window — ``/ei_data/historical/<sensor>/{start,end}``.
    """

    def __init__(self, retention: int = 10000) -> None:
        self._readings: Dict[str, List[SensorReading]] = defaultdict(list)
        self._sensors: Dict[str, _BaseSensor] = {}
        self.retention = int(retention)

    # -- registration ------------------------------------------------------
    def register_sensor(self, sensor: _BaseSensor) -> None:
        """Attach a live sensor; realtime queries will pull fresh readings from it."""
        self._sensors[sensor.sensor_id] = sensor

    @property
    def sensor_ids(self) -> List[str]:
        """All sensors known to the store (live or with recorded data)."""
        return sorted(set(self._sensors) | set(self._readings))

    # -- ingestion ------------------------------------------------------------
    def record(self, reading: SensorReading) -> None:
        """Store one reading, evicting the oldest when over retention."""
        series = self._readings[reading.sensor_id]
        series.append(reading)
        if len(series) > self.retention:
            del series[: len(series) - self.retention]

    def capture(self, sensor_id: str, count: int = 1) -> List[SensorReading]:
        """Pull ``count`` fresh readings from a registered live sensor and record them."""
        sensor = self._sensors.get(sensor_id)
        if sensor is None:
            raise ResourceNotFoundError(f"no live sensor registered as {sensor_id!r}")
        readings = [sensor.read() for _ in range(count)]
        for reading in readings:
            self.record(reading)
        return readings

    # -- queries -----------------------------------------------------------------
    def realtime(self, sensor_id: str) -> SensorReading:
        """Newest reading for a sensor, pulling from the live sensor when attached."""
        if sensor_id in self._sensors:
            return self.capture(sensor_id, count=1)[0]
        series = self._readings.get(sensor_id)
        if not series:
            raise ResourceNotFoundError(f"no data recorded for sensor {sensor_id!r}")
        return series[-1]

    def historical(
        self, sensor_id: str, start: float, end: Optional[float] = None
    ) -> List[SensorReading]:
        """Readings with ``start <= timestamp <= end`` (end defaults to +inf)."""
        series = self._readings.get(sensor_id)
        if series is None:
            raise ResourceNotFoundError(f"no data recorded for sensor {sensor_id!r}")
        end = float("inf") if end is None else end
        return [r for r in series if start <= r.timestamp <= end]

    def count(self, sensor_id: str) -> int:
        """Number of stored readings for a sensor."""
        return len(self._readings.get(sensor_id, []))

    def total_bytes(self, sensor_id: Optional[str] = None) -> int:
        """Stored payload bytes, for one sensor or all of them."""
        if sensor_id is not None:
            return sum(r.nbytes for r in self._readings.get(sensor_id, []))
        return sum(r.nbytes for series in self._readings.values() for r in series)
