"""Simulated edge sensors.

Each sensor produces :class:`SensorReading` objects with a timestamp, a
payload (NumPy array) and ground-truth annotations so the application
scenarios can score themselves.  Generation is deterministic given the
seed, which the tests and benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class SensorReading:
    """One sample emitted by a sensor."""

    sensor_id: str
    timestamp: float
    payload: np.ndarray
    annotations: Dict[str, object] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Raw payload size in bytes (what uploading to the cloud would cost)."""
        return int(self.payload.nbytes)


class _BaseSensor:
    """Shared plumbing: identity, sampling period and deterministic RNG."""

    def __init__(self, sensor_id: str, period_s: float, seed: int = 0) -> None:
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        self.sensor_id = sensor_id
        self.period_s = float(period_s)
        self._rng = np.random.default_rng(seed)
        self._clock = 0.0

    def _tick(self) -> float:
        timestamp = self._clock
        self._clock += self.period_s
        return timestamp

    def stream(self, count: int) -> Iterator[SensorReading]:
        """Yield ``count`` consecutive readings."""
        for _ in range(count):
            yield self.read()

    def read(self) -> SensorReading:  # pragma: no cover - overridden
        raise NotImplementedError


class CameraSensor(_BaseSensor):
    """A fixed surveillance camera producing small grayscale frames.

    Frames contain zero or more bright rectangular "objects" whose
    bounding boxes are recorded as ground truth — enough structure for
    the public-safety detection pipeline to have a meaningful mAP.
    """

    def __init__(
        self,
        sensor_id: str = "camera1",
        frame_size: int = 32,
        max_objects: int = 3,
        period_s: float = 1.0 / 15.0,
        seed: int = 0,
    ) -> None:
        super().__init__(sensor_id, period_s, seed)
        if frame_size < 8:
            raise ConfigurationError("frame_size must be at least 8")
        self.frame_size = int(frame_size)
        self.max_objects = int(max_objects)

    def read(self) -> SensorReading:
        timestamp = self._tick()
        frame = self._rng.normal(0.1, 0.05, size=(self.frame_size, self.frame_size, 1))
        boxes: List[Tuple[float, float, float, float]] = []
        for _ in range(int(self._rng.integers(0, self.max_objects + 1))):
            size = int(self._rng.integers(4, max(5, self.frame_size // 4)))
            x = int(self._rng.integers(0, self.frame_size - size))
            y = int(self._rng.integers(0, self.frame_size - size))
            frame[y : y + size, x : x + size, 0] += self._rng.uniform(0.6, 1.0)
            boxes.append((float(x), float(y), float(x + size), float(y + size)))
        return SensorReading(
            sensor_id=self.sensor_id,
            timestamp=timestamp,
            payload=frame,
            annotations={"boxes": boxes},
        )


class WearableIMUSensor(_BaseSensor):
    """A wrist-worn accelerometer/gyroscope producing activity windows.

    Each reading is a ``(steps, channels)`` window whose oscillation
    pattern encodes one of the activity classes; the class index is the
    ground-truth annotation used by the connected-health scenario.
    """

    ACTIVITIES = ("resting", "walking", "running")

    def __init__(
        self,
        sensor_id: str = "wearable1",
        steps: int = 20,
        channels: int = 6,
        period_s: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(sensor_id, period_s, seed)
        self.steps = int(steps)
        self.channels = int(channels)

    def read(self) -> SensorReading:
        timestamp = self._tick()
        activity = int(self._rng.integers(0, len(self.ACTIVITIES)))
        time = np.linspace(0, 2 * np.pi, self.steps)
        frequency = 1.0 + activity
        phases = self._rng.uniform(0, 2 * np.pi, size=self.channels)
        window = np.stack([np.sin(frequency * time + phase) for phase in phases], axis=1)
        window = window + self._rng.normal(0, 0.25, size=window.shape)
        return SensorReading(
            sensor_id=self.sensor_id,
            timestamp=timestamp,
            payload=window,
            annotations={"activity": activity, "activity_name": self.ACTIVITIES[activity]},
        )


class PowerMeterSensor(_BaseSensor):
    """A whole-home power meter with appliance on/off state ground truth.

    The trace is a base load plus per-appliance rectangular contributions
    — the structure non-intrusive load monitoring (the smart-home
    power_monitor algorithm) needs.
    """

    APPLIANCES = ("fridge", "heater", "washer", "oven")
    APPLIANCE_WATTS = (120.0, 1500.0, 500.0, 2000.0)

    def __init__(
        self,
        sensor_id: str = "powermeter1",
        period_s: float = 60.0,
        base_load_w: float = 80.0,
        seed: int = 0,
    ) -> None:
        super().__init__(sensor_id, period_s, seed)
        self.base_load_w = float(base_load_w)
        self._states = np.zeros(len(self.APPLIANCES), dtype=bool)

    def read(self) -> SensorReading:
        timestamp = self._tick()
        toggles = self._rng.random(len(self.APPLIANCES)) < 0.15
        self._states = np.logical_xor(self._states, toggles)
        total = self.base_load_w + float(
            np.sum(np.array(self.APPLIANCE_WATTS) * self._states)
        ) + float(self._rng.normal(0, 5.0))
        return SensorReading(
            sensor_id=self.sensor_id,
            timestamp=timestamp,
            payload=np.array([max(0.0, total)]),
            annotations={"appliance_states": self._states.copy().tolist()},
        )


class VehicleCameraSensor(_BaseSensor):
    """A forward-facing vehicle camera tracking one lead object.

    The lead object follows a smooth trajectory across frames so the
    connected-vehicles tracking algorithm has temporally coherent ground
    truth to estimate and predict.
    """

    def __init__(
        self,
        sensor_id: str = "vehiclecam1",
        frame_size: int = 32,
        period_s: float = 1.0 / 10.0,
        seed: int = 0,
    ) -> None:
        super().__init__(sensor_id, period_s, seed)
        self.frame_size = int(frame_size)
        self._position = np.array(
            [self.frame_size / 2.0, self.frame_size / 2.0], dtype=np.float64
        )
        self._velocity = self._rng.normal(0, 0.8, size=2)

    def read(self) -> SensorReading:
        timestamp = self._tick()
        self._velocity += self._rng.normal(0, 0.2, size=2)
        self._velocity = np.clip(self._velocity, -2.0, 2.0)
        self._position = np.clip(
            self._position + self._velocity, 4.0, self.frame_size - 5.0
        )
        frame = self._rng.normal(0.1, 0.05, size=(self.frame_size, self.frame_size, 1))
        x, y = int(self._position[0]), int(self._position[1])
        frame[y - 3 : y + 3, x - 3 : x + 3, 0] += 0.9
        return SensorReading(
            sensor_id=self.sensor_id,
            timestamp=timestamp,
            payload=frame,
            annotations={"position": self._position.copy().tolist()},
        )
