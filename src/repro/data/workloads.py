"""Workload generators for the four application scenarios and the benchmarks.

Each generator bundles sensor simulation and labelling into arrays ready
for training/evaluation, so benchmarks can sweep workload sizes without
re-deriving the plumbing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.data.sensors import (
    CameraSensor,
    PowerMeterSensor,
    VehicleCameraSensor,
    WearableIMUSensor,
)
from repro.exceptions import ConfigurationError


@dataclass
class DetectionWorkload:
    """Frames plus ground-truth boxes for the public-safety scenario."""

    frames: np.ndarray               # (n, h, w, 1)
    boxes: List[List[Tuple[float, float, float, float]]]

    @property
    def total_bytes(self) -> int:
        return int(self.frames.nbytes)


def object_detection_workload(frames: int = 50, frame_size: int = 32, seed: int = 0) -> DetectionWorkload:
    """Surveillance-camera frames with bounding-box ground truth."""
    if frames <= 0:
        raise ConfigurationError("frames must be positive")
    camera = CameraSensor(frame_size=frame_size, seed=seed)
    readings = list(camera.stream(frames))
    return DetectionWorkload(
        frames=np.stack([r.payload for r in readings]),
        boxes=[list(r.annotations["boxes"]) for r in readings],
    )


@dataclass
class ActivityWorkload:
    """IMU windows plus activity labels for the connected-health scenario."""

    windows: np.ndarray   # (n, steps, channels)
    labels: np.ndarray    # (n,)
    num_classes: int


def activity_recognition_workload(
    samples: int = 200, steps: int = 20, channels: int = 6, seed: int = 0
) -> ActivityWorkload:
    """Wearable-IMU activity windows."""
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    sensor = WearableIMUSensor(steps=steps, channels=channels, seed=seed)
    readings = list(sensor.stream(samples))
    return ActivityWorkload(
        windows=np.stack([r.payload for r in readings]),
        labels=np.array([r.annotations["activity"] for r in readings], dtype=np.int64),
        num_classes=len(WearableIMUSensor.ACTIVITIES),
    )


@dataclass
class PowerWorkload:
    """Aggregate power readings plus appliance state labels for the smart home."""

    power_w: np.ndarray           # (n,)
    appliance_states: np.ndarray  # (n, appliances) boolean
    appliance_names: Tuple[str, ...]


def appliance_power_workload(samples: int = 500, seed: int = 0) -> PowerWorkload:
    """Whole-home power trace with per-appliance on/off ground truth."""
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    meter = PowerMeterSensor(seed=seed)
    readings = list(meter.stream(samples))
    return PowerWorkload(
        power_w=np.array([float(r.payload[0]) for r in readings]),
        appliance_states=np.array([r.annotations["appliance_states"] for r in readings], dtype=bool),
        appliance_names=PowerMeterSensor.APPLIANCES,
    )


@dataclass
class TrajectoryWorkload:
    """Vehicle-camera frames plus the lead object's true positions."""

    frames: np.ndarray      # (n, h, w, 1)
    positions: np.ndarray   # (n, 2)


def trajectory_workload(frames: int = 100, frame_size: int = 32, seed: int = 0) -> TrajectoryWorkload:
    """Forward-camera frames with a smoothly moving lead object."""
    if frames <= 0:
        raise ConfigurationError("frames must be positive")
    camera = VehicleCameraSensor(frame_size=frame_size, seed=seed)
    readings = list(camera.stream(frames))
    return TrajectoryWorkload(
        frames=np.stack([r.payload for r in readings]),
        positions=np.array([r.annotations["position"] for r in readings]),
    )


@dataclass(frozen=True)
class StreamRequest:
    """One libei request of a streaming workload: where it goes and its args."""

    scenario: str
    algorithm: str
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def path(self) -> str:
        """The request's libei URL path (args travel as a query string)."""
        query = "&".join(f"{key}={value}" for key, value in self.args.items()
                         if not isinstance(value, (list, dict)))
        suffix = f"?{query}" if query else ""
        return f"/ei_algorithms/{self.scenario}/{self.algorithm}/{suffix}"


#: Default libei algorithm per scenario, matching :func:`repro.apps.register_all`.
SCENARIO_ALGORITHMS: Dict[str, str] = {
    "safety": "detection",
    "vehicles": "tracking",
    "home": "power_monitor",
    "health": "activity_recognition",
}


def scenario_request_stream(
    requests_per_scenario: int = 25,
    seed: int = 0,
    frame_size: int = 16,
    algorithms: Optional[Mapping[str, str]] = None,
    include_payload: bool = False,
) -> Iterator[StreamRequest]:
    """Interleave the four scenario workloads into one request stream.

    Generates ``requests_per_scenario`` requests per scenario and yields
    them round-robin (safety, vehicles, home, health, safety, ...) — the
    mixed live traffic an edge gateway actually sees, ready to drive a
    :class:`~repro.serving.fleet.FleetGateway` or a dispatcher directly.
    Each request carries a ``seq`` argument; with ``include_payload=True``
    the raw sensor payload rides along as a JSON-serializable nested list
    (for handlers that run a zoo model on the request body rather than on
    an attached sensor).

    **Determinism contract:** the stream is a pure function of its
    arguments.  Two calls with the same explicit ``seed`` (and the same
    sizes/algorithms) yield *byte-identical* streams — identical request
    order, paths, ``seq`` numbers and payload bytes — which is what makes
    recorded traces (:mod:`repro.loadgen.trace`) replayable: a trace file
    only needs to persist the generator arguments, not the payloads.
    Compare streams with :func:`stream_fingerprint`.
    """
    if requests_per_scenario <= 0:
        raise ConfigurationError("requests_per_scenario must be positive")
    if not isinstance(seed, int):
        raise ConfigurationError("seed must be an explicit int: the stream's "
                                 "determinism contract is keyed on it")
    algorithms = dict(SCENARIO_ALGORITHMS, **dict(algorithms or {}))
    n = requests_per_scenario
    detection = object_detection_workload(frames=n, frame_size=frame_size, seed=seed)
    trajectory = trajectory_workload(frames=n, frame_size=frame_size, seed=seed + 1)
    power = appliance_power_workload(samples=n, seed=seed + 2)
    activity = activity_recognition_workload(samples=n, seed=seed + 3)
    for i in range(n):
        per_scenario: List[Tuple[str, Dict[str, object]]] = [
            ("safety", {"payload": detection.frames[i]}),
            ("vehicles", {"payload": trajectory.frames[i]}),
            ("home", {"payload": np.array([power.power_w[i]])}),
            ("health", {"payload": activity.windows[i]}),
        ]
        for scenario, extras in per_scenario:
            args: Dict[str, object] = {"seq": i}
            if include_payload:
                args["payload"] = extras["payload"].tolist()
            yield StreamRequest(
                scenario=scenario, algorithm=algorithms[scenario], args=args
            )


def stream_fingerprint(requests: Iterable[StreamRequest]) -> str:
    """SHA-256 over a canonical byte encoding of a request stream.

    Two streams are byte-identical exactly when their fingerprints match,
    so determinism regressions (``same seed != same stream``) reduce to a
    string comparison.  The encoding covers order, scenario, algorithm
    and the full args dictionary (payloads included).
    """
    digest = hashlib.sha256()
    for request in requests:
        digest.update(
            json.dumps(
                [request.scenario, request.algorithm, request.args],
                sort_keys=True, separators=(",", ":"),
            ).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()
