"""Edge data layer: simulated sensors, the realtime/historical store, and workloads.

The paper's libei exposes data via two URL families —
``/ei_data/realtime/<sensor>/{timestamp}`` and
``/ei_data/historical/<sensor>/{start,end}``.  This package provides the
sensor simulators that generate that data (cameras, wearable IMUs,
appliance power meters, vehicle cameras) and the store the URLs read.
"""

from repro.data.sensors import (
    CameraSensor,
    PowerMeterSensor,
    SensorReading,
    VehicleCameraSensor,
    WearableIMUSensor,
)
from repro.data.store import EdgeDataStore
from repro.data.workloads import (
    SCENARIO_ALGORITHMS,
    StreamRequest,
    activity_recognition_workload,
    appliance_power_workload,
    object_detection_workload,
    scenario_request_stream,
    stream_fingerprint,
    trajectory_workload,
)

__all__ = [
    "CameraSensor",
    "EdgeDataStore",
    "PowerMeterSensor",
    "SCENARIO_ALGORITHMS",
    "SensorReading",
    "StreamRequest",
    "VehicleCameraSensor",
    "WearableIMUSensor",
    "activity_recognition_workload",
    "appliance_power_workload",
    "object_detection_workload",
    "scenario_request_stream",
    "stream_fingerprint",
    "trajectory_workload",
]
