"""repro: a full reproduction of *OpenEI: An Open Framework for Edge Intelligence*.

The package is organised as the paper's system plus every substrate it
depends on:

``repro.core``
    The OpenEI framework proper: the ALEM capability tuple, the model
    selector (Eq. 1 and an RL-based variant), the package manager with its
    real-time machine-learning module, the optimized model zoo and the
    top-level :class:`~repro.core.openei.OpenEI` orchestrator.
``repro.nn``
    A lightweight, from-scratch deep-learning package (the TensorFlow-Lite
    analogue) built on NumPy.
``repro.compression``
    Model-compression techniques of Table I: pruning, quantization,
    weight sharing, low-rank factorization and knowledge distillation.
``repro.eialgorithms``
    Edge-native algorithms: MobileNet, SqueezeNet, Bonsai, ProtoNN,
    FastGRNN and EMI-RNN style models.
``repro.hardware``
    Analytical edge-device models and the ALEM profiler.
``repro.runtime``
    The edge running-environment simulator (tasks, real-time scheduling,
    resources, computation migration).
``repro.collaboration``
    Cloud-edge and edge-edge collaboration: the three EI dataflows,
    transfer learning, federated aggregation and DDNN early-exit inference.
``repro.serving``
    libei: the RESTful API of Fig. 6 on a stdlib HTTP server.
``repro.data``
    Sensor simulators, the realtime/historical data store and workload
    generators.
``repro.loadgen``
    Open-loop, arrival-time-driven load generation: replayable traces
    (diurnal curves, Poisson bursts), the tail-latency harness behind
    ``BENCH_serving_tail.json``, and trace-scheduled fault injection.
``repro.apps``
    The four application scenarios: public safety, connected vehicles,
    smart home and connected health.
"""

from repro.version import __version__

__all__ = ["__version__"]
