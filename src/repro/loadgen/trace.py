"""Replayable arrival-time traces for open-loop load generation.

Every benchmark before this module was *closed-loop*: the next request
fired only after the previous response returned, so server-side queueing
delay was invisible — a slow replica simply slowed the generator down.
Real edge traffic is *open-loop*: arrivals are decided by the world
(diurnal user activity, Poisson bursts), not by the server.  A
:class:`Trace` pins every request to an **arrival timestamp**; the
:class:`~repro.loadgen.harness.OpenLoopHarness` fires each request on
schedule regardless of response lag, so queueing shows up where it
belongs — in the latency tail.

Traces are **deterministic**: every generator takes an explicit ``seed``
and builds arrivals from :func:`numpy.random.default_rng` and request
bodies from the byte-identical
:func:`~repro.data.workloads.scenario_request_stream` contract.  Two
calls with the same arguments produce equal traces (compare with
:meth:`Trace.fingerprint`), and a trace saved with :meth:`Trace.save`
replays identically after :meth:`Trace.load` — which is what lets a
``BENCH_*.json`` number from one PR be re-measured under the exact same
traffic on the next.

Arrival processes:

* :func:`constant_trace` — fixed-rate arrivals (the simplest baseline);
* :func:`poisson_trace` — homogeneous Poisson arrivals at a mean rate;
* :func:`diurnal_trace` — a non-homogeneous Poisson process whose rate
  follows a day curve (trough → peak → trough over ``period_s``),
  sampled by Lewis–Shedler thinning;
* :func:`burst_trace` — a base Poisson process plus superimposed
  high-rate bursts (flash crowds).

Faults ride along in the same trace under :class:`FaultSpec` — replica
kills/restarts, emulated device slowdowns, malformed requests — pinned
to trace offsets so chaos experiments replay as deterministically as the
traffic itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.workloads import SCENARIO_ALGORITHMS, StreamRequest, scenario_request_stream
from repro.exceptions import ConfigurationError

#: Fault actions understood by :class:`~repro.loadgen.faults.FaultInjector`.
FAULT_ACTIONS = ("kill-gateway", "restart-gateway", "slowdown", "malformed-request")

#: Trace-file schema version (bumped on incompatible format changes).
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TimedRequest:
    """One scheduled libei request: *when* it arrives and *what* it asks."""

    at_s: float                     # arrival offset from trace start, seconds
    scenario: str
    algorithm: str
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def path(self) -> str:
        """The request's libei URL path (args travel as a query string)."""
        return StreamRequest(self.scenario, self.algorithm, dict(self.args)).path

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TimedRequest":
        return cls(
            at_s=float(data["at_s"]),
            scenario=str(data["scenario"]),
            algorithm=str(data["algorithm"]),
            args=dict(data.get("args", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, pinned to a trace offset.

    ``action`` is one of :data:`FAULT_ACTIONS`; ``target`` names what the
    fault hits (a gateway index for kill/restart, a fleet instance id or
    index for slowdown, unused for malformed requests).  ``factor`` is
    the slowdown multiplier (``1.0`` restores full speed).
    """

    at_s: float
    action: str
    target: Optional[Union[int, str]] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be non-negative")
        if self.factor <= 0:
            raise ConfigurationError("slowdown factor must be positive")

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "action": self.action,
            "target": self.target,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        return cls(
            at_s=float(data["at_s"]),
            action=str(data["action"]),
            target=data.get("target"),  # type: ignore[arg-type]
            factor=float(data.get("factor", 1.0)),
        )


@dataclass
class Trace:
    """An ordered, timestamped request schedule plus its fault plan.

    ``meta`` records how the trace was generated (kind, seed, rates) so a
    trace file is self-describing; it travels into the
    ``BENCH_serving_tail.json`` report verbatim.
    """

    name: str
    requests: List[TimedRequest]
    faults: List[FaultSpec] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.at_s)
        self.faults = sorted(self.faults, key=lambda f: f.at_s)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration_s(self) -> float:
        """Offset of the last scheduled event (request or fault)."""
        last_request = self.requests[-1].at_s if self.requests else 0.0
        last_fault = self.faults[-1].at_s if self.faults else 0.0
        return max(last_request, last_fault)

    def scenarios(self) -> List[str]:
        """Distinct scenarios appearing in the trace, sorted."""
        return sorted({r.scenario for r in self.requests})

    def with_faults(self, faults: Sequence[FaultSpec]) -> "Trace":
        """A copy of this trace with ``faults`` added to its fault plan."""
        return Trace(
            name=self.name,
            requests=list(self.requests),
            faults=list(self.faults) + list(faults),
            meta=dict(self.meta),
        )

    # -- determinism -----------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the canonical byte encoding of the full schedule.

        Two traces replay identically exactly when their fingerprints
        match: the digest covers every request's offset, routing and args
        plus the complete fault plan (but not ``name``/``meta``, which
        are descriptive).
        """
        digest = hashlib.sha256()
        for request in self.requests:
            digest.update(_canonical_json(request.as_dict()))
            digest.update(b"\n")
        digest.update(b"--faults--\n")
        for fault in self.faults:
            digest.update(_canonical_json(fault.as_dict()))
            digest.update(b"\n")
        return digest.hexdigest()

    # -- persistence -----------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "meta": dict(self.meta),
            "requests": [r.as_dict() for r in self.requests],
            "faults": [f.as_dict() for f in self.faults],
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as a JSON file; returns the written path."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True),
                        encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Trace":
        version = int(data.get("schema_version", TRACE_SCHEMA_VERSION))
        if version > TRACE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"trace schema_version {version} is newer than supported "
                f"({TRACE_SCHEMA_VERSION}); regenerate the trace"
            )
        return cls(
            name=str(data.get("name", "trace")),
            requests=[TimedRequest.from_dict(r) for r in data.get("requests", [])],  # type: ignore[union-attr]
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],  # type: ignore[union-attr]
            meta=dict(data.get("meta", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace back from :meth:`save`'s JSON format."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def _canonical_json(data: Mapping[str, object]) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


# -- arrival processes ------------------------------------------------------------

def _normalize_mix(scenario_mix: Optional[Mapping[str, float]]) -> Dict[str, float]:
    """Normalize a scenario→weight mapping (defaults to the four paper apps)."""
    if scenario_mix is None:
        scenario_mix = {s: 1.0 for s in SCENARIO_ALGORITHMS}
    mix = dict(scenario_mix)
    if not mix:
        raise ConfigurationError("scenario_mix must name at least one scenario")
    total = float(sum(mix.values()))
    if total <= 0 or any(w < 0 for w in mix.values()):
        raise ConfigurationError("scenario_mix weights must be non-negative with a positive sum")
    return {scenario: weight / total for scenario, weight in sorted(mix.items())}


def _assign_requests(
    arrivals: np.ndarray,
    mix: Dict[str, float],
    seed: int,
    algorithms: Optional[Mapping[str, str]],
) -> List[TimedRequest]:
    """Turn raw arrival offsets into scenario-tagged timed requests.

    Scenario assignment and per-scenario ``seq`` numbering are drawn from
    the same seeded generator that produced the arrivals' jitter, so the
    whole schedule is one deterministic function of the seed.  The args
    match :func:`~repro.data.workloads.scenario_request_stream`'s shape
    (``{"seq": i}``), so any handler that serves the stream serves a
    trace unchanged.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, len(arrivals)]))
    names = list(mix)
    weights = np.array([mix[name] for name in names])
    algorithms = dict(SCENARIO_ALGORITHMS, **dict(algorithms or {}))
    choices = rng.choice(len(names), size=len(arrivals), p=weights)
    counters = {name: 0 for name in names}
    requests = []
    for at_s, index in zip(arrivals, choices):
        scenario = names[int(index)]
        seq = counters[scenario]
        counters[scenario] = seq + 1
        requests.append(TimedRequest(
            at_s=float(at_s),
            scenario=scenario,
            algorithm=algorithms.get(scenario, scenario),
            args={"seq": seq},
        ))
    return requests


def constant_trace(
    duration_s: float,
    rps: float,
    seed: int = 0,
    scenario_mix: Optional[Mapping[str, float]] = None,
    algorithms: Optional[Mapping[str, str]] = None,
    name: str = "constant",
) -> Trace:
    """Evenly spaced arrivals at a fixed rate (deterministic spacing)."""
    _require_positive(duration_s, rps)
    count = max(1, int(round(duration_s * rps)))
    arrivals = np.arange(count, dtype=np.float64) / rps
    mix = _normalize_mix(scenario_mix)
    return Trace(
        name=name,
        requests=_assign_requests(arrivals, mix, seed, algorithms),
        meta={"kind": "constant", "seed": seed, "duration_s": duration_s,
              "rps": rps, "scenario_mix": mix},
    )


def poisson_trace(
    duration_s: float,
    mean_rps: float,
    seed: int = 0,
    scenario_mix: Optional[Mapping[str, float]] = None,
    algorithms: Optional[Mapping[str, str]] = None,
    name: str = "poisson",
) -> Trace:
    """Homogeneous Poisson arrivals at ``mean_rps`` (exponential gaps)."""
    _require_positive(duration_s, mean_rps)
    rng = np.random.default_rng(seed)
    arrivals = _poisson_arrivals(rng, duration_s, mean_rps)
    mix = _normalize_mix(scenario_mix)
    return Trace(
        name=name,
        requests=_assign_requests(arrivals, mix, seed, algorithms),
        meta={"kind": "poisson", "seed": seed, "duration_s": duration_s,
              "mean_rps": mean_rps, "scenario_mix": mix},
    )


def diurnal_trace(
    duration_s: float,
    peak_rps: float,
    trough_rps: Optional[float] = None,
    period_s: Optional[float] = None,
    seed: int = 0,
    scenario_mix: Optional[Mapping[str, float]] = None,
    algorithms: Optional[Mapping[str, str]] = None,
    name: str = "diurnal",
) -> Trace:
    """A non-homogeneous Poisson process following a day curve.

    The instantaneous rate is a raised cosine running trough → peak →
    trough across each ``period_s`` (default: one full cycle over the
    trace), sampled exactly by Lewis–Shedler thinning: candidate
    arrivals are drawn at the peak rate and accepted with probability
    ``rate(t) / peak_rps``.  ``trough_rps`` defaults to ``peak_rps / 10``
    — a 10x day/night swing, the fleet-sizing regime the adaptive
    controller is built for.
    """
    _require_positive(duration_s, peak_rps)
    trough = peak_rps / 10.0 if trough_rps is None else float(trough_rps)
    if trough < 0 or trough > peak_rps:
        raise ConfigurationError("trough_rps must lie in [0, peak_rps]")
    period = float(period_s) if period_s is not None else float(duration_s)
    if period <= 0:
        raise ConfigurationError("period_s must be positive")

    def rate(t: np.ndarray) -> np.ndarray:
        phase = (1.0 - np.cos(2.0 * np.pi * t / period)) / 2.0  # 0 at trough, 1 at peak
        return trough + (peak_rps - trough) * phase

    rng = np.random.default_rng(seed)
    candidates = _poisson_arrivals(rng, duration_s, peak_rps)
    keep = rng.random(len(candidates)) * peak_rps < rate(candidates)
    arrivals = candidates[keep]
    if len(arrivals) == 0:  # degenerate tiny traces: keep at least one request
        arrivals = np.array([duration_s / 2.0])
    mix = _normalize_mix(scenario_mix)
    return Trace(
        name=name,
        requests=_assign_requests(arrivals, mix, seed, algorithms),
        meta={"kind": "diurnal", "seed": seed, "duration_s": duration_s,
              "peak_rps": peak_rps, "trough_rps": trough, "period_s": period,
              "scenario_mix": mix},
    )


def burst_trace(
    duration_s: float,
    base_rps: float,
    burst_rps: float,
    bursts: int = 2,
    burst_duration_s: Optional[float] = None,
    seed: int = 0,
    scenario_mix: Optional[Mapping[str, float]] = None,
    algorithms: Optional[Mapping[str, str]] = None,
    name: str = "burst",
) -> Trace:
    """Base Poisson traffic with superimposed flash-crowd bursts.

    ``bursts`` windows of ``burst_duration_s`` (default: 5% of the trace
    each) are placed uniformly at random; inside each window an extra
    Poisson process at ``burst_rps`` stacks on top of the base rate.
    """
    _require_positive(duration_s, base_rps)
    if burst_rps <= 0 or bursts < 0:
        raise ConfigurationError("burst_rps must be positive and bursts non-negative")
    window = float(burst_duration_s) if burst_duration_s is not None else duration_s * 0.05
    if window <= 0 or window > duration_s:
        raise ConfigurationError("burst_duration_s must lie in (0, duration_s]")
    rng = np.random.default_rng(seed)
    pieces = [_poisson_arrivals(rng, duration_s, base_rps)]
    starts = np.sort(rng.uniform(0.0, duration_s - window, size=bursts))
    for start in starts:
        pieces.append(start + _poisson_arrivals(rng, window, burst_rps))
    arrivals = np.sort(np.concatenate(pieces))
    mix = _normalize_mix(scenario_mix)
    return Trace(
        name=name,
        requests=_assign_requests(arrivals, mix, seed, algorithms),
        meta={"kind": "burst", "seed": seed, "duration_s": duration_s,
              "base_rps": base_rps, "burst_rps": burst_rps, "bursts": bursts,
              "burst_duration_s": window,
              "burst_starts": [float(s) for s in starts],
              "scenario_mix": mix},
    )


def trace_from_stream(
    requests_per_scenario: int,
    rps: float,
    seed: int = 0,
    name: str = "stream",
    **stream_kwargs,
) -> Trace:
    """Wrap :func:`~repro.data.workloads.scenario_request_stream` in a
    fixed-rate arrival schedule.

    The round-robin scenario interleaving is preserved exactly (the
    PR-3/PR-5 control-plane tests depend on its shape); this helper just
    pins each request of the stream to an arrival timestamp so it can be
    replayed open-loop.
    """
    _require_positive(float(requests_per_scenario), rps)
    stream = list(scenario_request_stream(
        requests_per_scenario=requests_per_scenario, seed=seed, **stream_kwargs
    ))
    requests = [
        TimedRequest(at_s=i / rps, scenario=r.scenario, algorithm=r.algorithm,
                     args=dict(r.args))
        for i, r in enumerate(stream)
    ]
    return Trace(
        name=name,
        requests=requests,
        meta={"kind": "stream", "seed": seed, "rps": rps,
              "requests_per_scenario": requests_per_scenario},
    )


def _poisson_arrivals(rng: np.random.Generator, duration_s: float, rate: float) -> np.ndarray:
    """Arrival offsets of a homogeneous Poisson process on [0, duration)."""
    # draw the count, then order statistics of uniforms: one vectorized
    # pass instead of a Python loop over exponential gaps
    count = rng.poisson(duration_s * rate)
    return np.sort(rng.uniform(0.0, duration_s, size=count))


def _require_positive(duration_s: float, rate: float) -> None:
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    if rate <= 0:
        raise ConfigurationError("the arrival rate must be positive")
