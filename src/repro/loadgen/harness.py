"""The open-loop replay engine and its tail-latency recorder.

Closed-loop benchmarking (fire, wait, fire) hides queueing: when the
server slows down, the generator slows down with it, and the measured
latency stays flat while throughput silently collapses.
:class:`OpenLoopHarness` replays a :class:`~repro.loadgen.trace.Trace`
the way real traffic arrives — **by arrival timestamp**.  The schedule
thread fires each request at its trace offset (optionally compressed by
``time_scale``) and never waits for responses; worker threads carry the
requests, and a response that lags simply overlaps the arrivals behind
it.  Latency is measured from the *scheduled arrival*, so time a request
spends queued behind a saturated fleet lands in the tail percentiles
instead of disappearing into generator backpressure.

Faults in the trace's plan are dispatched at their offsets on a
dedicated thread through a
:class:`~repro.loadgen.faults.FaultInjector`, so a gateway kill cannot
stall the arrival schedule.

The resulting :class:`TailLatencyReport` aggregates per-scenario
p50/p95/p99, RPS and error counts, and :func:`write_bench_report`
serializes it to the repo-root ``BENCH_serving_tail.json`` artifact that
tracks the fleet's tail across PRs.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.loadgen.faults import FaultInjector
from repro.loadgen.trace import TimedRequest, Trace

#: Report-file schema version (see docs/BENCHMARKS.md).
REPORT_SCHEMA_VERSION = 1

#: Default repo-root artifact name for the serving tail trajectory.
BENCH_REPORT_NAME = "BENCH_serving_tail.json"


@dataclass
class ScenarioStats:
    """Latency/error accounting for one scenario (or the overall rollup)."""

    latencies_s: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.latencies_s)

    @property
    def requests(self) -> int:
        return self.completed + len(self.errors)

    def percentile_ms(self, q: float) -> Optional[float]:
        if not self.latencies_s:
            return None
        return float(np.percentile(np.asarray(self.latencies_s), q) * 1e3)

    def as_dict(self, wall_s: float) -> Dict[str, object]:
        latencies = np.asarray(self.latencies_s) if self.latencies_s else None
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": len(self.errors),
            "rps": self.completed / wall_s if wall_s > 0 else 0.0,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "mean_ms": float(latencies.mean() * 1e3) if latencies is not None else None,
            "max_ms": float(latencies.max() * 1e3) if latencies is not None else None,
        }


@dataclass
class TailLatencyReport:
    """One replay's aggregated results, ready for ``BENCH_serving_tail.json``."""

    trace_name: str
    trace_fingerprint: str
    trace_meta: Dict[str, object]
    time_scale: float
    max_workers: int
    wall_s: float
    overall: ScenarioStats
    scenarios: Dict[str, ScenarioStats]
    faults: List[Dict[str, object]] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return len(self.overall.errors)

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": "serving_tail",
            "schema_version": REPORT_SCHEMA_VERSION,
            "trace": {
                "name": self.trace_name,
                "fingerprint": self.trace_fingerprint,
                "meta": dict(self.trace_meta),
            },
            "replay": {
                "time_scale": self.time_scale,
                "max_workers": self.max_workers,
                "wall_s": self.wall_s,
            },
            "overall": self.overall.as_dict(self.wall_s),
            "scenarios": {
                name: stats.as_dict(self.wall_s)
                for name, stats in sorted(self.scenarios.items())
            },
            "faults": [dict(f) for f in self.faults],
        }


class _Recorder:
    """Thread-safe accumulation of per-scenario latencies and errors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.overall = ScenarioStats()  # guarded-by: _lock
        self.scenarios: Dict[str, ScenarioStats] = {}  # guarded-by: _lock

    def _bucket(self, scenario: str) -> ScenarioStats:  # requires-lock: _lock
        stats = self.scenarios.get(scenario)
        if stats is None:
            stats = self.scenarios[scenario] = ScenarioStats()
        return stats

    def success(self, scenario: str, latency_s: float) -> None:
        with self._lock:
            self.overall.latencies_s.append(latency_s)
            self._bucket(scenario).latencies_s.append(latency_s)

    def failure(self, scenario: str, error: str) -> None:
        with self._lock:
            self.overall.errors.append(error)
            self._bucket(scenario).errors.append(error)


#: A request carrier: takes one scheduled request, returns the response
#: dictionary, raises on failure.
Sender = Callable[[TimedRequest], Dict[str, object]]


class OpenLoopHarness:
    """Arrival-time-driven trace replay with bounded worker concurrency.

    ``send`` carries one request (see :func:`client_sender` /
    :func:`fleet_sender` / :func:`dispatcher_sender` for the three
    stock carriers).  ``time_scale`` compresses the trace clock — a 60 s
    trace replays in 0.6 s wall time at ``time_scale=0.01`` with every
    inter-arrival gap shrunk proportionally.  ``max_workers`` bounds
    in-flight requests; arrivals beyond it queue, and their queueing
    delay is *measured* (latency runs from the scheduled arrival, not
    from the moment a worker picked the request up).

    ``on_response(request, result)`` runs on the worker thread after
    each successful response — the hook chaos tests use to pump adaptive
    and rollout control cycles under live traffic.
    """

    def __init__(
        self,
        send: Sender,
        time_scale: float = 1.0,
        max_workers: int = 32,
        fault_injector: Optional[FaultInjector] = None,
        on_response: Optional[Callable[[TimedRequest, Dict[str, object]], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.send = send
        self.time_scale = float(time_scale)
        self.max_workers = int(max_workers)
        self.fault_injector = fault_injector
        self.on_response = on_response
        self.clock = clock
        self.sleep = sleep

    def run(self, trace: Trace) -> TailLatencyReport:
        """Replay one trace to completion and aggregate its tail report."""
        if trace.faults and self.fault_injector is None:
            raise ConfigurationError(
                f"trace {trace.name!r} schedules {len(trace.faults)} faults but the "
                "harness has no fault_injector; a silently skipped fault plan "
                "would report vacuously clean results"
            )
        recorder = _Recorder()
        schedule = sorted(
            [(r.at_s, 0, r) for r in trace.requests] + [(f.at_s, 1, f) for f in trace.faults],
            key=lambda item: (item[0], item[1]),
        )
        futures: List[Future] = []
        start = self.clock()
        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="loadgen"
        ) as pool, ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="loadgen-fault"
        ) as fault_pool:
            for at_s, kind, event in schedule:
                due = start + at_s * self.time_scale
                delay = due - self.clock()
                if delay > 0:
                    self.sleep(delay)
                if kind == 0:
                    futures.append(pool.submit(self._fire, event, due, recorder))
                else:
                    # faults run off the schedule thread: a kill/restart
                    # must not delay the arrivals behind it
                    futures.append(fault_pool.submit(self.fault_injector.apply, event))
            wait(futures)
        wall_s = self.clock() - start
        # surface fault-application bugs (request errors are already in the
        # recorder; only injector exceptions re-raise here)
        for future in futures:
            exc = future.exception()
            if exc is not None:
                raise exc
        return TailLatencyReport(
            trace_name=trace.name,
            trace_fingerprint=trace.fingerprint(),
            trace_meta=dict(trace.meta),
            time_scale=self.time_scale,
            max_workers=self.max_workers,
            wall_s=wall_s,
            overall=recorder.overall,
            scenarios=recorder.scenarios,
            faults=self.fault_injector.records() if self.fault_injector else [],
        )

    def _fire(self, request: TimedRequest, scheduled_at: float, recorder: _Recorder) -> None:
        """Carry one request; never raises (failures go to the recorder)."""
        try:
            result = self.send(request)
        except Exception as exc:  # noqa: BLE001 - every failure counts in the tail report
            recorder.failure(request.scenario, f"{type(exc).__name__}: {exc}")
            return
        # open-loop latency: completion minus *scheduled arrival*, so time
        # spent queued behind a saturated fleet is part of the measurement
        recorder.success(request.scenario, self.clock() - scheduled_at)
        if self.on_response is not None:
            self.on_response(request, result)


# -- stock request carriers -------------------------------------------------------

def client_sender(client) -> Sender:
    """Carry requests over HTTP through a :class:`~repro.serving.client.LibEIClient`.

    The client's replica failover is part of the measurement: a killed
    gateway shows up as a latency bump on the requests that failed over,
    not as errors.
    """

    def send(request: TimedRequest) -> Dict[str, object]:
        return client.call_algorithm(request.scenario, request.algorithm, dict(request.args))

    return send


def fleet_sender(fleet) -> Sender:
    """Carry requests in-process through :meth:`EdgeFleet.call_algorithm`."""

    def send(request: TimedRequest) -> Dict[str, object]:
        return fleet.call_algorithm(request.scenario, request.algorithm, dict(request.args))

    return send


def dispatcher_sender(dispatcher) -> Sender:
    """Carry requests through a :class:`~repro.serving.api.LibEIDispatcher` path."""

    def send(request: TimedRequest) -> Dict[str, object]:
        return dispatcher.handle_path(request.path)

    return send


# -- the BENCH artifact -----------------------------------------------------------

def write_bench_report(
    report: TailLatencyReport,
    path: Union[str, Path],
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Serialize a tail report to its JSON artifact; returns the path.

    ``extra`` merges additional top-level keys (e.g. fleet shape, git
    metadata) into the document without touching the measured sections.
    """
    path = Path(path)
    document = report.as_dict()
    if extra:
        document.update(extra)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
