"""Executing a trace's fault plan against a live serving stack.

A :class:`~repro.loadgen.trace.FaultSpec` says *what* happens *when*;
:class:`FaultInjector` knows *how*, by binding the abstract plan to the
concrete objects under test:

* ``kill-gateway`` / ``restart-gateway`` → a
  :class:`~repro.serving.supervisor.GatewaySupervisor` slot index.  A
  kill closes the gateway's listening socket mid-trace (clients must
  fail over); a restart re-registers a fresh gateway on the original
  address (clients fail back without reconfiguration).
* ``slowdown`` → :meth:`EdgeRuntime.set_slowdown` on one fleet instance
  (by registration index or instance id), emulating thermal throttling /
  co-tenant contention.  ``factor=1.0`` clears it.  The PR-3 adaptive
  controller is expected to *observe* this through telemetry and
  reselect.
* ``malformed-request`` → a syntactically invalid libei path is fired at
  the stack.  The request must be *rejected* (4xx), not crash a worker;
  the injector records the rejection so harness reports can separate
  injected errors from real failures.

Every applied fault is appended to :attr:`FaultInjector.applied` with
its outcome, which the harness folds into ``BENCH_serving_tail.json`` —
a tail-latency number without its fault history is not reproducible.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import APIError, ConfigurationError, ResourceNotFoundError
from repro.loadgen.trace import FaultSpec

#: The deliberately malformed path fired by ``malformed-request`` faults:
#: an unknown resource family, guaranteed to parse-fail into HTTP 400.
MALFORMED_PATH = "/chaos/injected/malformed"


class FaultInjector:
    """Binds a fault plan to a live fleet / supervisor / client triple.

    Any of the three bindings may be omitted when the plan does not need
    it; applying a fault whose binding is missing raises
    :class:`~repro.exceptions.ConfigurationError` (a chaos experiment
    silently skipping its faults would report vacuously clean results).

    ``send_malformed`` overrides how malformed requests are delivered;
    the default GETs :data:`MALFORMED_PATH` through the bound client and
    expects an :class:`~repro.exceptions.APIError` rejection.
    """

    def __init__(
        self,
        fleet=None,
        supervisor=None,
        client=None,
        send_malformed: Optional[Callable[[], object]] = None,
    ) -> None:
        self.fleet = fleet
        self.supervisor = supervisor
        self.client = client
        self._send_malformed = send_malformed
        self._lock = threading.Lock()
        self.applied: List[Dict[str, object]] = []  # guarded-by: _lock

    # -- application -------------------------------------------------------------
    def apply(self, fault: FaultSpec) -> Dict[str, object]:
        """Execute one fault; returns (and records) its outcome entry."""
        handler = {
            "kill-gateway": self._kill_gateway,
            "restart-gateway": self._restart_gateway,
            "slowdown": self._slowdown,
            "malformed-request": self._malformed_request,
        }[fault.action]
        record = dict(fault.as_dict())
        try:
            detail = handler(fault)
        except Exception as exc:
            record["outcome"] = "failed"
            record["error"] = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self.applied.append(record)
            raise
        record["outcome"] = "applied"
        if detail:
            record.update(detail)
        with self._lock:
            self.applied.append(record)
        return record

    def records(self) -> List[Dict[str, object]]:
        """A snapshot of every fault applied so far, in application order."""
        with self._lock:
            return [dict(r) for r in self.applied]

    # -- individual actions ------------------------------------------------------
    def _kill_gateway(self, fault: FaultSpec) -> Dict[str, object]:
        supervisor = self._require("supervisor")
        address = supervisor.kill(self._gateway_index(fault))
        return {"address": list(address)}

    def _restart_gateway(self, fault: FaultSpec) -> Dict[str, object]:
        supervisor = self._require("supervisor")
        gateway = supervisor.restart(self._gateway_index(fault))
        return {"address": list(gateway.address)}

    def _slowdown(self, fault: FaultSpec) -> Dict[str, object]:
        fleet = self._require("fleet")
        instance = self._resolve_instance(fleet, fault.target)
        instance.openei.runtime.set_slowdown(fault.factor)
        return {"instance_id": instance.instance_id, "factor": fault.factor}

    def _malformed_request(self, fault: FaultSpec) -> Dict[str, object]:
        del fault
        if self._send_malformed is not None:
            self._send_malformed()
            return {"path": "custom"}
        client = self._require("client")
        try:
            client.get(MALFORMED_PATH)
        except APIError:
            # the expected outcome: the stack rejected garbage instead of
            # crashing a worker or poisoning a batch
            return {"path": MALFORMED_PATH, "rejected": True}
        raise ConfigurationError(
            f"the stack accepted the malformed path {MALFORMED_PATH!r}; "
            "it must be rejected with an HTTP error"
        )

    # -- resolution helpers ------------------------------------------------------
    def _require(self, name: str):
        bound = getattr(self, name)
        if bound is None:
            raise ConfigurationError(
                f"this fault plan needs a {name} but the injector was built without one"
            )
        return bound

    @staticmethod
    def _gateway_index(fault: FaultSpec) -> int:
        if fault.target is None:
            return 0
        try:
            return int(fault.target)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"gateway faults target a slot index, got {fault.target!r}"
            ) from exc

    @staticmethod
    def _resolve_instance(fleet, target: Optional[Union[int, str]]):
        instances = fleet.instances
        if target is None:
            return instances[0]
        if isinstance(target, int) or (isinstance(target, str) and target.isdigit()):
            index = int(target)
            if not 0 <= index < len(instances):
                raise ResourceNotFoundError(
                    f"no fleet instance index {index}; fleet size is {len(instances)}"
                )
            return instances[index]
        return fleet.instance(str(target))
