"""Open-loop load generation and fault injection for the serving fleet.

The paper's accuracy/latency/energy story is only credible when latency
is measured the way real edge traffic arrives — open-loop, arrival-time
driven.  This package provides the three pieces:

* :mod:`repro.loadgen.trace` — deterministic, replayable traces:
  diurnal arrival curves, Poisson bursts, constant rates and
  per-scenario mixes generated from explicit seeds, with JSON
  save/load and fingerprinting;
* :mod:`repro.loadgen.harness` — :class:`OpenLoopHarness` fires each
  request at its trace offset regardless of response lag (queueing
  delay lands in the tail, not in generator backpressure) and
  aggregates per-scenario p50/p95/p99, RPS and error counts into the
  repo-root ``BENCH_serving_tail.json`` trajectory artifact;
* :mod:`repro.loadgen.faults` — :class:`FaultInjector` executes a
  trace's fault plan against the live stack: gateway kills/restarts
  (through :class:`~repro.serving.supervisor.GatewaySupervisor`),
  emulated device slowdowns and malformed-request injection.

See docs/BENCHMARKS.md for the trace and report file formats.
"""

from repro.loadgen.faults import MALFORMED_PATH, FaultInjector
from repro.loadgen.harness import (
    BENCH_REPORT_NAME,
    OpenLoopHarness,
    ScenarioStats,
    TailLatencyReport,
    client_sender,
    dispatcher_sender,
    fleet_sender,
    write_bench_report,
)
from repro.loadgen.trace import (
    FAULT_ACTIONS,
    FaultSpec,
    TimedRequest,
    Trace,
    burst_trace,
    constant_trace,
    diurnal_trace,
    poisson_trace,
    trace_from_stream,
)

__all__ = [
    "BENCH_REPORT_NAME",
    "FAULT_ACTIONS",
    "FaultInjector",
    "FaultSpec",
    "MALFORMED_PATH",
    "OpenLoopHarness",
    "ScenarioStats",
    "TailLatencyReport",
    "TimedRequest",
    "Trace",
    "burst_trace",
    "client_sender",
    "constant_trace",
    "dispatcher_sender",
    "diurnal_trace",
    "fleet_sender",
    "poisson_trace",
    "trace_from_stream",
    "write_bench_report",
]
