"""HashedNets-style weight sharing (Chen et al., cited in Section IV.A.1).

Connections are grouped into hash buckets with a cheap deterministic hash
of their index; all connections in a bucket share one value.  Here the
sharing is applied post-training: each bucket's value becomes the mean of
its members, and storage drops to one float per bucket.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential


def _shareable_keys(layer) -> Iterable[str]:
    for key in layer.params:
        base = key.rsplit("/", 1)[-1]
        if base not in ("b", "beta", "gamma") and not base.startswith("b_"):
            yield key


def _bucket_ids(size: int, buckets: int, salt: int) -> np.ndarray:
    """Deterministic pseudo-random bucket assignment for ``size`` weights."""
    indices = np.arange(size, dtype=np.uint64)
    # xorshift-style mix; cheap, deterministic and well spread.
    mixed = (indices * np.uint64(2654435761) + np.uint64(salt)) & np.uint64(0xFFFFFFFF)
    mixed ^= mixed >> np.uint64(16)
    return (mixed % np.uint64(buckets)).astype(np.int64)


def hash_share_model(
    model: Sequential,
    compression_factor: float = 8.0,
    in_place: bool = False,
) -> Sequential:
    """Share weights within hash buckets, shrinking storage by ``compression_factor``.

    Each weight matrix with N entries is represented by ``N /
    compression_factor`` bucket values.
    """
    if compression_factor <= 1.0:
        raise ConfigurationError("compression_factor must exceed 1")
    shared = model if in_place else model.clone_architecture()
    for idx, layer in enumerate(shared.layers):
        for key in _shareable_keys(layer):
            weights = layer.params[key]
            flat = weights.ravel()
            buckets = max(1, int(flat.size / compression_factor))
            ids = _bucket_ids(flat.size, buckets, salt=idx + 1)
            sums = np.bincount(ids, weights=flat, minlength=buckets)
            counts = np.bincount(ids, minlength=buckets)
            bucket_values = sums / np.maximum(counts, 1)
            weights[...] = bucket_values[ids].reshape(weights.shape)
    shared.metadata["bytes_per_param"] = float(
        model.metadata.get("bytes_per_param", 4.0)
    ) / compression_factor
    shared.metadata["compression"] = list(shared.metadata.get("compression", [])) + ["hashed"]
    return shared
