"""Weight quantization: binary, k-means and int8.

Covers the quantization techniques the paper cites in Section IV.A.1
(Courbariaux et al. binary networks, Gong et al. k-means quantization)
and the 8-bit tensors of QNNPACK-style edge packages (Section IV.B).
All techniques are *simulated quantization*: weights are replaced by
their quantized values but kept in float arrays so the unmodified NumPy
inference path still runs; the achieved storage cost is recorded in
``model.metadata["bytes_per_param"]``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential


def _quantizable_keys(layer) -> Iterable[str]:
    for key in layer.params:
        base = key.rsplit("/", 1)[-1]
        if base not in ("b", "beta", "gamma") and not base.startswith("b_"):
            yield key


def _nearest_centroid(flat: np.ndarray, centroids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment in O(N log K) time and O(N) memory.

    Sorting the centroids turns 1-D nearest-neighbour search into a
    ``searchsorted`` against the midpoints between consecutive centroids
    — the same result as the ``argmin(|flat[:, None] - centroids|)``
    distance matrix without materializing the O(N * K) intermediate.
    Returns ``(sorted_centroids, assignment)`` with assignments indexing
    the sorted order.
    """
    order = np.argsort(centroids, kind="stable")
    sorted_centroids = centroids[order]
    midpoints = 0.5 * (sorted_centroids[1:] + sorted_centroids[:-1])
    return sorted_centroids, np.searchsorted(midpoints, flat)


def binarize_model(model: Sequential, in_place: bool = False) -> Sequential:
    """Constrain weights to ±scale per layer (binary-weight networks).

    The per-layer scale is the mean absolute value, the standard
    binary-weight-network estimator, which keeps activations in range.
    """
    quantized = model if in_place else model.clone_architecture()
    for layer in quantized.layers:
        for key in _quantizable_keys(layer):
            weights = layer.params[key]
            scale = float(np.mean(np.abs(weights))) or 1.0
            weights[...] = np.where(weights >= 0, scale, -scale)
    quantized.metadata["bytes_per_param"] = 1.0 / 8.0
    quantized.metadata["compression"] = list(quantized.metadata.get("compression", [])) + ["binary"]
    return quantized


def kmeans_quantize_model(
    model: Sequential,
    clusters: int = 16,
    iterations: int = 10,
    in_place: bool = False,
    seed: int = 0,
) -> Sequential:
    """Cluster each layer's weights into ``clusters`` shared values (Gong et al.).

    Storage cost becomes ``log2(clusters)`` bits per weight plus a small
    codebook, recorded in the model metadata.
    """
    if clusters < 2:
        raise ConfigurationError("clusters must be at least 2")
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    quantized = model if in_place else model.clone_architecture()
    rng = np.random.default_rng(seed)
    for layer in quantized.layers:
        for key in _quantizable_keys(layer):
            weights = layer.params[key]
            flat = weights.ravel()
            if flat.size <= clusters:
                continue
            # 1-D k-means via quantile initialization + Lloyd iterations.
            # Assignment uses sorted centroids + searchsorted midpoints —
            # the same nearest centroid as an |flat[:, None] - centroids|
            # distance matrix, in bounded memory (no O(N * K) intermediate).
            centroids = np.quantile(flat, np.linspace(0.0, 1.0, clusters))
            centroids = centroids + rng.normal(0, 1e-9, size=clusters)
            for _ in range(iterations):
                centroids, assignment = _nearest_centroid(flat, centroids)
                sums = np.bincount(assignment, weights=flat, minlength=clusters)
                counts = np.bincount(assignment, minlength=clusters)
                occupied = counts > 0
                centroids[occupied] = sums[occupied] / counts[occupied]
            centroids, assignment = _nearest_centroid(flat, centroids)
            weights[...] = centroids[assignment].reshape(weights.shape)
    bits = float(np.ceil(np.log2(clusters)))
    quantized.metadata["bytes_per_param"] = bits / 8.0
    quantized.metadata["compression"] = list(quantized.metadata.get("compression", [])) + ["kmeans"]
    return quantized


def quantize_int8_model(model: Sequential, in_place: bool = False) -> Sequential:
    """Symmetric per-tensor int8 quantization (QNNPACK / TensorFlow Lite style)."""
    quantized = model if in_place else model.clone_architecture()
    for layer in quantized.layers:
        for key in _quantizable_keys(layer):
            weights = layer.params[key]
            max_abs = float(np.max(np.abs(weights))) or 1.0
            scale = max_abs / 127.0
            weights[...] = np.round(weights / scale) * scale
    quantized.metadata["bytes_per_param"] = 1.0
    quantized.metadata["compression"] = list(quantized.metadata.get("compression", [])) + ["int8"]
    return quantized
