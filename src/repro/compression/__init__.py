"""Model-compression techniques of the paper's Table I.

Three families are implemented, matching the table's rows, plus the
int8 quantization the edge packages of Section IV.B rely on:

* **Parameter sharing and pruning** — magnitude pruning
  (:mod:`repro.compression.pruning`), binary and k-means weight
  quantization (:mod:`repro.compression.quantization`) and HashedNets
  weight sharing (:mod:`repro.compression.hashing`).
* **Low-rank factorization** — SVD-based approximation of dense layers
  (:mod:`repro.compression.low_rank`).
* **Knowledge transfer** — teacher-student distillation
  (:mod:`repro.compression.distillation`).

:mod:`repro.compression.pipeline` chains techniques and reports the
size/accuracy/speedup summary the Table I benchmark prints.
"""

from repro.compression.distillation import DistillationResult, distill
from repro.compression.hashing import hash_share_model
from repro.compression.low_rank import low_rank_compress_model
from repro.compression.pipeline import CompressionReport, CompressionStep, compress_and_report
from repro.compression.pruning import magnitude_prune_model, sparsity
from repro.compression.quantization import (
    binarize_model,
    kmeans_quantize_model,
    quantize_int8_model,
)

__all__ = [
    "CompressionReport",
    "CompressionStep",
    "DistillationResult",
    "binarize_model",
    "compress_and_report",
    "distill",
    "hash_share_model",
    "kmeans_quantize_model",
    "low_rank_compress_model",
    "magnitude_prune_model",
    "quantize_int8_model",
    "sparsity",
]
