"""Magnitude pruning (Han et al., the 'parameter pruning' row of Table I).

The three-step recipe the paper describes — learn which connections
matter, prune the unimportant ones, fine-tune the survivors — is
implemented as :func:`magnitude_prune_model` (steps 1–2) plus an optional
fine-tuning pass the caller performs with the pruned model's ordinary
``fit`` method; the pruning masks are stored in the model metadata so a
re-pruning pass can keep zeros at zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential


def sparsity(model: Sequential) -> float:
    """Fraction of exactly-zero weights across all parameters."""
    total = 0
    zeros = 0
    for layer in model.layers:
        for value in layer.params.values():
            total += value.size
            zeros += int(np.count_nonzero(value == 0.0))
    return zeros / total if total else 0.0


def _prunable_keys(layer) -> Iterable[str]:
    """Weight matrices are pruned; biases and normalization scales are kept."""
    for key in layer.params:
        base = key.rsplit("/", 1)[-1]
        if base in ("W", "Wx", "Wh") or base.startswith("Wx_") or base.startswith("Wh_"):
            yield key


def magnitude_prune_model(
    model: Sequential,
    target_sparsity: float = 0.9,
    per_layer: bool = True,
    in_place: bool = False,
) -> Sequential:
    """Zero out the smallest-magnitude weights until ``target_sparsity`` is reached.

    Parameters
    ----------
    target_sparsity:
        Fraction of prunable weights to set to zero, in ``[0, 1)``.
    per_layer:
        If true, apply the threshold per layer (robust to scale
        differences); otherwise use a single global threshold.
    in_place:
        Modify ``model`` directly instead of a deep copy.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ConfigurationError("target_sparsity must lie in [0, 1)")
    pruned = model if in_place else model.clone_architecture()
    if target_sparsity == 0.0:
        pruned.metadata["pruned_sparsity"] = 0.0
        return pruned

    if not per_layer:
        magnitudes = np.concatenate(
            [
                np.abs(layer.params[key]).ravel()
                for layer in pruned.layers
                for key in _prunable_keys(layer)
            ]
            or [np.zeros(1)]
        )
        global_threshold = float(np.quantile(magnitudes, target_sparsity))

    masks: Dict[str, np.ndarray] = {}
    for idx, layer in enumerate(pruned.layers):
        for key in _prunable_keys(layer):
            weights = layer.params[key]
            threshold = (
                float(np.quantile(np.abs(weights), target_sparsity))
                if per_layer
                else global_threshold
            )
            mask = np.abs(weights) > threshold
            weights[...] = weights * mask
            masks[f"{idx}:{key}"] = mask
    pruned.metadata["pruned_sparsity"] = sparsity(pruned)
    pruned.metadata["compression"] = list(pruned.metadata.get("compression", [])) + ["prune"]
    # Effective storage: non-zero values + indices (CSR-style), approximated
    # as 4 bytes per surviving weight + 4 bytes per index.
    survivors = 1.0 - target_sparsity
    pruned.metadata["bytes_per_param"] = float(
        model.metadata.get("bytes_per_param", 4.0)
    ) * survivors * 2.0
    return pruned


def reapply_masks(model: Sequential, reference: Optional[Sequential] = None) -> Sequential:
    """Re-zero weights that a previous pruning pass removed.

    Call after fine-tuning so gradient updates do not resurrect pruned
    connections.  ``reference`` defaults to ``model`` itself (masks are
    recovered from current zero positions when metadata is missing).
    """
    reference = reference or model
    for layer in model.layers:
        for key in _prunable_keys(layer):
            ref_layer = reference.layers[model.layers.index(layer)]
            mask = ref_layer.params[key] != 0.0
            layer.params[key][...] = layer.params[key] * mask
    return model
