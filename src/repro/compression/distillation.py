"""Knowledge distillation (teacher-student training, Table I row 3).

A compact student network is trained to match the soft predictions of a
larger teacher, optionally blended with the hard labels — the Caruana /
Hinton recipe the paper summarizes under "knowledge transfer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, Optimizer


@dataclass
class DistillationResult:
    """Outcome of a distillation run."""

    student: Sequential
    teacher_accuracy: float
    student_accuracy: float
    epochs: int
    temperature: float

    @property
    def accuracy_gap(self) -> float:
        """Teacher accuracy minus student accuracy (positive means the student lags)."""
        return self.teacher_accuracy - self.student_accuracy


def _soften(probabilities: np.ndarray, temperature: float) -> np.ndarray:
    """Re-temper a probability distribution: p_i^(1/T) renormalized."""
    logits = np.log(np.clip(probabilities, 1e-12, 1.0)) / temperature
    logits -= logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)


def distill(
    teacher: Sequential,
    student: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    epochs: int = 10,
    batch_size: int = 32,
    temperature: float = 2.0,
    hard_label_weight: float = 0.3,
    optimizer: Optional[Optimizer] = None,
    rng: Optional[np.random.Generator] = None,
) -> DistillationResult:
    """Train ``student`` to mimic ``teacher`` on the given data.

    The student minimizes cross entropy against a blend of softened
    teacher predictions and the true one-hot labels, weighted by
    ``hard_label_weight``.
    """
    if not 0.0 <= hard_label_weight <= 1.0:
        raise ConfigurationError("hard_label_weight must lie in [0, 1]")
    if temperature <= 0:
        raise ConfigurationError("temperature must be positive")
    if epochs <= 0 or batch_size <= 0:
        raise ConfigurationError("epochs and batch_size must be positive")
    rng = rng or np.random.default_rng(0)
    optimizer = optimizer or Adam(learning_rate=0.005)
    loss = CrossEntropyLoss()

    teacher_probs = teacher.predict(x_train)
    soft_targets = _soften(teacher_probs, temperature)
    num_classes = teacher_probs.shape[1]
    onehot = np.zeros_like(teacher_probs)
    onehot[np.arange(len(y_train)), y_train.astype(int)] = 1.0
    blended = hard_label_weight * onehot + (1.0 - hard_label_weight) * soft_targets

    count = len(x_train)
    for _ in range(epochs):
        order = rng.permutation(count)
        for start in range(0, count, batch_size):
            idx = order[start : start + batch_size]
            preds = student.forward(x_train[idx], training=True)
            loss.forward(preds, blended[idx])
            student.backward(loss.backward())
            optimizer.step(student.layers)

    teacher_accuracy = teacher.evaluate(x_test, y_test)[1]
    student_accuracy = student.evaluate(x_test, y_test)[1]
    student.metadata["compression"] = list(student.metadata.get("compression", [])) + ["distilled"]
    student.metadata["distilled_from"] = teacher.name
    del num_classes
    return DistillationResult(
        student=student,
        teacher_accuracy=teacher_accuracy,
        student_accuracy=student_accuracy,
        epochs=epochs,
        temperature=temperature,
    )
