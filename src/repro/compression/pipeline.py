"""Compression pipeline and reporting.

Chains individual techniques and measures, for each resulting model, the
quantities Table I reasons about: size reduction, accuracy delta and
inference speedup on a reference edge device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.catalog import raspberry_pi_4
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import ALEMProfiler
from repro.nn.flops import model_cost
from repro.nn.model import Sequential

CompressionFn = Callable[[Sequential], Sequential]


@dataclass
class CompressionStep:
    """A named compression technique applied to a model."""

    name: str
    apply: CompressionFn
    family: str = "parameter sharing and pruning"


@dataclass
class CompressionReport:
    """Size/accuracy/latency comparison of compressed variants against a baseline."""

    baseline_name: str
    baseline_accuracy: float
    baseline_size_mb: float
    baseline_latency_s: float
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, name: str, family: str, accuracy: float, size_mb: float, latency_s: float) -> None:
        """Record one compressed variant."""
        self.rows.append(
            {
                "technique": name,
                "family": family,
                "accuracy": accuracy,
                "accuracy_delta": accuracy - self.baseline_accuracy,
                "size_mb": size_mb,
                "size_reduction_x": self.baseline_size_mb / size_mb if size_mb else float("inf"),
                "latency_s": latency_s,
                "speedup_x": self.baseline_latency_s / latency_s if latency_s else float("inf"),
            }
        )

    def as_table(self) -> str:
        """Text table matching the structure of the paper's Table I."""
        header = (
            f"{'technique':<22s} {'family':<30s} {'acc':>6s} {'Δacc':>7s} "
            f"{'size(MB)':>9s} {'xsmaller':>9s} {'xfaster':>8s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row['technique']:<22s} {row['family']:<30s} "
                f"{row['accuracy']:>6.3f} {row['accuracy_delta']:>+7.3f} "
                f"{row['size_mb']:>9.3f} {row['size_reduction_x']:>9.1f} {row['speedup_x']:>8.2f}"
            )
        return "\n".join(lines)


def compress_and_report(
    model: Sequential,
    steps: Sequence[CompressionStep],
    x_test: np.ndarray,
    y_test: np.ndarray,
    input_shape: Tuple[int, ...],
    device: Optional[DeviceSpec] = None,
    profiler: Optional[ALEMProfiler] = None,
) -> Tuple[CompressionReport, Dict[str, Sequential]]:
    """Apply each compression step to ``model`` and summarize the trade-offs.

    Returns the report plus the compressed model per technique so callers
    (e.g. the model zoo) can register the variants.
    """
    device = device or raspberry_pi_4()
    profiler = profiler or ALEMProfiler()
    baseline_cost = model_cost(model, input_shape)
    baseline_profile = profiler.profile(model, input_shape, device)
    baseline_accuracy = model.evaluate(x_test, y_test)[1]
    report = CompressionReport(
        baseline_name=model.name,
        baseline_accuracy=baseline_accuracy,
        baseline_size_mb=baseline_cost.size_mb,
        baseline_latency_s=baseline_profile.latency_s,
    )
    variants: Dict[str, Sequential] = {}
    for step in steps:
        compressed = step.apply(model)
        compressed.name = f"{model.name}-{step.name}"
        cost = model_cost(
            compressed, input_shape, bytes_per_param=float(compressed.metadata.get("bytes_per_param", 4.0))
        )
        profile = profiler.profile(
            compressed,
            input_shape,
            device,
            bytes_per_param=float(compressed.metadata.get("bytes_per_param", 4.0)),
        )
        accuracy = compressed.evaluate(x_test, y_test)[1]
        report.add(step.name, step.family, accuracy, cost.size_mb, profile.latency_s)
        variants[step.name] = compressed
    return report, variants
