"""Low-rank factorization (Denton et al. / Sainath et al., Table I row 2).

Dense weight matrices are approximated by a rank-r truncated SVD.  The
model keeps its architecture (the reconstructed full matrix is written
back, so the NumPy forward pass is unchanged) while the metadata records
the factorized storage cost ``r * (m + n)`` instead of ``m * n``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential


def truncated_svd(matrix: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return factors ``(A, B)`` with ``A @ B`` the best rank-``rank`` approximation."""
    if rank < 1:
        raise ConfigurationError("rank must be at least 1")
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    rank = min(rank, s.size)
    a = u[:, :rank] * s[:rank]
    b = vt[:rank, :]
    return a, b


def reconstruction_error(matrix: np.ndarray, rank: int) -> float:
    """Relative Frobenius error of the rank-``rank`` approximation."""
    a, b = truncated_svd(matrix, rank)
    denom = float(np.linalg.norm(matrix)) or 1.0
    return float(np.linalg.norm(matrix - a @ b)) / denom


def low_rank_compress_model(
    model: Sequential,
    rank_fraction: float = 0.25,
    min_rank: int = 1,
    in_place: bool = False,
) -> Sequential:
    """Apply truncated SVD to every Dense layer's weight matrix.

    ``rank_fraction`` scales the full rank of each matrix; the effective
    parameter count after factorization is recorded via
    ``metadata["bytes_per_param"]`` so the profiler charges the reduced size.
    """
    if not 0.0 < rank_fraction <= 1.0:
        raise ConfigurationError("rank_fraction must lie in (0, 1]")
    compressed = model if in_place else model.clone_architecture()
    original_params = 0
    factored_params = 0
    for layer in compressed.layers:
        if not isinstance(layer, Dense):
            for value in layer.params.values():
                original_params += value.size
                factored_params += value.size
            continue
        weights = layer.params["W"]
        rows, cols = weights.shape
        rank = max(min_rank, int(round(min(rows, cols) * rank_fraction)))
        a, b = truncated_svd(weights, rank)
        layer.params["W"][...] = a @ b
        original_params += weights.size
        factored_params += rank * (rows + cols)
        if "b" in layer.params:
            original_params += layer.params["b"].size
            factored_params += layer.params["b"].size
    base_bytes = float(model.metadata.get("bytes_per_param", 4.0))
    ratio = factored_params / max(1, original_params)
    compressed.metadata["bytes_per_param"] = base_bytes * ratio
    compressed.metadata["low_rank_fraction"] = rank_fraction
    compressed.metadata["compression"] = list(compressed.metadata.get("compression", [])) + ["low_rank"]
    return compressed
