"""Setuptools shim so `pip install -e .` works without the `wheel` package.

Offline environments that lack `wheel` cannot build PEP 660 editable
wheels; this file lets pip fall back to the legacy `setup.py develop`
path (`pip install -e . --no-use-pep517`). All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
